package rng

import (
	"math"
	"testing"
	"testing/quick"

	"nprt/internal/task"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical outputs in 100 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	c1 := root.Split(1)
	c2 := root.Split(2)
	c1again := New(7).Split(1)
	for i := 0; i < 100; i++ {
		v1, v2, v1a := c1.Uint64(), c2.Uint64(), c1again.Uint64()
		if v1 != v1a {
			t.Fatalf("Split(1) not reproducible at step %d", i)
		}
		if v1 == v2 {
			t.Fatalf("Split(1) and Split(2) collided at step %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
	}
}

func TestIntnRangeAndPanic(t *testing.T) {
	r := New(5)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) only produced %d distinct values in 1000 draws", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestGaussianMoments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Gaussian()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Gaussian mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("Gaussian variance = %g, want ~1", variance)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(13)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Normal(10, 2)
	}
	if mean := sum / n; math.Abs(mean-10) > 0.05 {
		t.Errorf("Normal(10,2) mean = %g", mean)
	}
}

func TestTruncNormalBounds(t *testing.T) {
	r := New(17)
	for i := 0; i < 10000; i++ {
		v := r.TruncNormal(5, 10, 2, 8)
		if v < 2 || v > 8 {
			t.Fatalf("TruncNormal escaped bounds: %g", v)
		}
	}
	// Only lower bound when max <= min.
	for i := 0; i < 1000; i++ {
		if v := r.TruncNormal(0, 3, 1, 0); v < 1 {
			t.Fatalf("lower-only truncation violated: %g", v)
		}
	}
}

func TestTruncNormalDegenerateSigma(t *testing.T) {
	r := New(19)
	if v := r.TruncNormal(5, 0, 0, 10); v != 5 {
		t.Errorf("sigma=0 should return mean, got %g", v)
	}
	if v := r.TruncNormal(-3, 0, 0, 10); v != 0 {
		t.Errorf("sigma=0 below min should clamp to min, got %g", v)
	}
	if v := r.TruncNormal(30, 0, 0, 10); v != 10 {
		t.Errorf("sigma=0 above max should clamp to max, got %g", v)
	}
}

func TestTruncNormalImpossibleWindowFallsBack(t *testing.T) {
	// Mean far outside a narrow window: rejection will exhaust and clamp.
	r := New(23)
	v := r.TruncNormal(1000, 0.001, 0, 1)
	if v < 0 || v > 1 {
		t.Errorf("fallback clamp failed: %g", v)
	}
}

func TestSampleDuration(t *testing.T) {
	r := New(29)
	d := task.Dist{Mean: 50, Sigma: 10, Min: 5, Max: 100}
	for i := 0; i < 5000; i++ {
		v := r.SampleDuration(d, 60)
		if v < 1 || v > 60 {
			t.Fatalf("SampleDuration out of [1,60]: %d", v)
		}
	}
	// Zero dist: deterministic at cap.
	if v := r.SampleDuration(task.Dist{}, 42); v != 42 {
		t.Errorf("zero dist should yield cap, got %d", v)
	}
	if v := r.SampleDuration(task.Dist{}, 0); v != 1 {
		t.Errorf("zero dist with no cap should yield 1, got %d", v)
	}
}

func TestSampleErrorNonNegative(t *testing.T) {
	r := New(31)
	d := task.Dist{Mean: 0, Sigma: 3}
	for i := 0; i < 5000; i++ {
		if v := r.SampleError(d); v < 0 {
			t.Fatalf("SampleError negative: %g", v)
		}
	}
}

func TestSampleErrorMeanTracksParameter(t *testing.T) {
	r := New(37)
	d := task.Dist{Mean: 8, Sigma: 1}
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		sum += r.SampleError(d)
	}
	if mean := sum / n; math.Abs(mean-8) > 0.05 {
		t.Errorf("SampleError mean = %g, want ~8", mean)
	}
}

// Property: any seed yields a usable stream whose Float64 stays in range.
func TestAnySeedUsable(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 10; i++ {
			if v := r.Float64(); v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Snapshot/restore must resume the stream bit-identically, including across
// a cached Box–Muller half (the Gaussian pair state).
func TestStateRoundTrip(t *testing.T) {
	r := New(99)
	for i := 0; i < 17; i++ {
		r.Uint64()
	}
	r.Gaussian() // leave a cached second half in the state
	st := r.State()
	clone, err := FromState(st)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if a, b := r.Gaussian(), clone.Gaussian(); a != b {
			t.Fatalf("restored stream diverged at Gaussian %d: %v vs %v", i, a, b)
		}
		if a, b := r.Uint64(), clone.Uint64(); a != b {
			t.Fatalf("restored stream diverged at Uint64 %d: %d vs %d", i, a, b)
		}
	}
}

func TestStateIsValue(t *testing.T) {
	r := New(7)
	st := r.State()
	r.Uint64() // must not retroactively change the snapshot
	clone, err := FromState(st)
	if err != nil {
		t.Fatal(err)
	}
	r2 := New(7)
	if clone.Uint64() != r2.Uint64() {
		t.Fatal("snapshot taken before a draw must replay that draw")
	}
}

func TestFromStateRejectsZero(t *testing.T) {
	if _, err := FromState(State{}); err != ErrZeroState {
		t.Fatalf("all-zero state: got err=%v, want ErrZeroState", err)
	}
}
