// Package stats provides the streaming statistics used by the experiment
// harness: Welford mean/variance accumulators, simple rate counters and
// fixed-bin histograms. Everything is allocation-free after construction so
// accumulators can sit on the simulator's hot path.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator computes running mean and variance with Welford's algorithm.
// The zero value is ready to use.
type Accumulator struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// AddN folds the same observation n times (cheap bulk insertion for the
// "accurate jobs contribute zero error" convention).
func (a *Accumulator) AddN(x float64, n int64) {
	for i := int64(0); i < n; i++ {
		a.Add(x)
	}
}

// N returns the number of observations.
func (a *Accumulator) N() int64 { return a.n }

// Mean returns the running mean (0 when empty).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the population variance (0 when fewer than 2 samples).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n)
}

// StdDev returns the population standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min and Max return observed extremes (0 when empty).
func (a *Accumulator) Min() float64 {
	if a.n == 0 {
		return 0
	}
	return a.min
}

// Max returns the largest observation (0 when empty).
func (a *Accumulator) Max() float64 {
	if a.n == 0 {
		return 0
	}
	return a.max
}

// Sum returns n*mean, the total of all observations.
func (a *Accumulator) Sum() float64 { return a.mean * float64(a.n) }

// Merge folds another accumulator into this one (parallel Welford merge).
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	n := a.n + b.n
	delta := b.mean - a.mean
	mean := a.mean + delta*float64(b.n)/float64(n)
	m2 := a.m2 + b.m2 + delta*delta*float64(a.n)*float64(b.n)/float64(n)
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	a.n, a.mean, a.m2 = n, mean, m2
}

// String renders "mean±σ (n=N)".
func (a *Accumulator) String() string {
	return fmt.Sprintf("%.4g±%.4g (n=%d)", a.Mean(), a.StdDev(), a.n)
}

// Rate counts events against trials, e.g. deadline violations per job.
// The zero value is ready to use.
type Rate struct {
	Events int64
	Trials int64
}

// Hit records a trial that was an event.
func (r *Rate) Hit() { r.Events++; r.Trials++ }

// Miss records a trial that was not an event.
func (r *Rate) Miss() { r.Trials++ }

// Record records a trial whose event-ness is given.
func (r *Rate) Record(event bool) {
	if event {
		r.Hit()
	} else {
		r.Miss()
	}
}

// Fraction returns Events/Trials (0 when no trials).
func (r *Rate) Fraction() float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.Events) / float64(r.Trials)
}

// Percent returns the fraction scaled to percent.
func (r *Rate) Percent() float64 { return 100 * r.Fraction() }

// String renders "12.3% (41/333)".
func (r *Rate) String() string {
	return fmt.Sprintf("%.1f%% (%d/%d)", r.Percent(), r.Events, r.Trials)
}

// Histogram is a fixed-bin histogram over [Lo, Hi) with out-of-range
// observations clamped into the edge bins.
type Histogram struct {
	Lo, Hi float64
	Bins   []int64
}

// NewHistogram returns a histogram with n bins spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int64, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Bins)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Bins) {
		i = len(h.Bins) - 1
	}
	h.Bins[i]++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int64 {
	var t int64
	for _, b := range h.Bins {
		t += b
	}
	return t
}

// Quantile returns an approximate q-quantile (bin midpoint), q in [0,1].
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var seen int64
	width := (h.Hi - h.Lo) / float64(len(h.Bins))
	for i, b := range h.Bins {
		seen += b
		if seen > target {
			return h.Lo + (float64(i)+0.5)*width
		}
	}
	return h.Hi
}

// MeanOf returns the arithmetic mean of a slice (0 when empty).
func MeanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDevOf returns the population standard deviation of a slice.
func StdDevOf(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := MeanOf(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// MedianOf returns the median of a slice (0 when empty). The input is not
// modified.
func MedianOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}
