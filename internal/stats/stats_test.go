package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.StdDev() != 0 || a.N() != 0 || a.Min() != 0 || a.Max() != 0 {
		t.Error("zero-value accumulator should report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Errorf("N = %d", a.N())
	}
	if math.Abs(a.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %g, want 5", a.Mean())
	}
	if math.Abs(a.StdDev()-2) > 1e-12 {
		t.Errorf("StdDev = %g, want 2 (classic Wikipedia example)", a.StdDev())
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("Min/Max = %g/%g", a.Min(), a.Max())
	}
	if math.Abs(a.Sum()-40) > 1e-9 {
		t.Errorf("Sum = %g, want 40", a.Sum())
	}
	if s := a.String(); !strings.Contains(s, "n=8") {
		t.Errorf("String = %q", s)
	}
}

func TestAccumulatorSingleSample(t *testing.T) {
	var a Accumulator
	a.Add(3.5)
	if a.Variance() != 0 || a.Mean() != 3.5 || a.Min() != 3.5 || a.Max() != 3.5 {
		t.Errorf("single sample stats wrong: %+v", a)
	}
}

func TestAddN(t *testing.T) {
	var a, b Accumulator
	a.AddN(0, 3)
	a.Add(4)
	for _, x := range []float64{0, 0, 0, 4} {
		b.Add(x)
	}
	if math.Abs(a.Mean()-b.Mean()) > 1e-12 || math.Abs(a.StdDev()-b.StdDev()) > 1e-12 {
		t.Errorf("AddN mismatch: %v vs %v", a, b)
	}
}

func TestMerge(t *testing.T) {
	var a, b, whole Accumulator
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for i, x := range xs {
		whole.Add(x)
		if i < 4 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d", a.N())
	}
	if math.Abs(a.Mean()-whole.Mean()) > 1e-12 {
		t.Errorf("merged mean = %g, want %g", a.Mean(), whole.Mean())
	}
	if math.Abs(a.Variance()-whole.Variance()) > 1e-9 {
		t.Errorf("merged variance = %g, want %g", a.Variance(), whole.Variance())
	}
	if a.Min() != 1 || a.Max() != 10 {
		t.Errorf("merged min/max = %g/%g", a.Min(), a.Max())
	}
	// Merging into empty copies; merging empty is a no-op.
	var empty Accumulator
	before := a
	a.Merge(&empty)
	if a != before {
		t.Error("merging empty changed the accumulator")
	}
	var c Accumulator
	c.Merge(&whole)
	if c.N() != whole.N() || c.Mean() != whole.Mean() {
		t.Error("merge into empty should copy")
	}
}

func TestRate(t *testing.T) {
	var r Rate
	if r.Fraction() != 0 {
		t.Error("empty rate should be 0")
	}
	r.Hit()
	r.Miss()
	r.Miss()
	r.Record(true)
	if r.Events != 2 || r.Trials != 4 {
		t.Errorf("rate = %d/%d", r.Events, r.Trials)
	}
	if math.Abs(r.Fraction()-0.5) > 1e-12 || math.Abs(r.Percent()-50) > 1e-12 {
		t.Errorf("fraction/percent = %g/%g", r.Fraction(), r.Percent())
	}
	if s := r.String(); !strings.Contains(s, "2/4") {
		t.Errorf("String = %q", s)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-5) // clamps to first bin
	h.Add(99) // clamps to last bin
	if h.Total() != 12 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Bins[0] != 2 || h.Bins[9] != 2 {
		t.Errorf("edge clamping wrong: %v", h.Bins)
	}
	med := h.Quantile(0.5)
	if med < 3 || med > 7 {
		t.Errorf("median estimate = %g", med)
	}
	if q := h.Quantile(1.0); q < 9 {
		t.Errorf("q100 = %g", q)
	}
}

func TestHistogramPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
}

func TestSliceHelpers(t *testing.T) {
	if MeanOf(nil) != 0 || StdDevOf(nil) != 0 || MedianOf(nil) != 0 {
		t.Error("empty-slice helpers should return 0")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if math.Abs(MeanOf(xs)-5) > 1e-12 {
		t.Errorf("MeanOf = %g", MeanOf(xs))
	}
	if math.Abs(StdDevOf(xs)-2) > 1e-12 {
		t.Errorf("StdDevOf = %g", StdDevOf(xs))
	}
	if MedianOf([]float64{3, 1, 2}) != 2 {
		t.Error("odd median wrong")
	}
	if MedianOf([]float64{4, 1, 2, 3}) != 2.5 {
		t.Error("even median wrong")
	}
	// MedianOf must not mutate its input.
	in := []float64{3, 1, 2}
	MedianOf(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("MedianOf mutated input")
	}
}

// Property: streaming accumulator matches the direct two-pass formulas.
func TestAccumulatorMatchesTwoPass(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		var a Accumulator
		for i, v := range raw {
			xs[i] = float64(v) / 7
			a.Add(xs[i])
		}
		return math.Abs(a.Mean()-MeanOf(xs)) < 1e-6 &&
			math.Abs(a.StdDev()-StdDevOf(xs)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: merge of a random split equals the whole.
func TestMergeEqualsWholeProperty(t *testing.T) {
	f := func(raw []int16, cut uint8) bool {
		if len(raw) < 2 {
			return true
		}
		k := int(cut) % len(raw)
		var left, right, whole Accumulator
		for i, v := range raw {
			x := float64(v)
			whole.Add(x)
			if i < k {
				left.Add(x)
			} else {
				right.Add(x)
			}
		}
		left.Merge(&right)
		closeRel := func(a, b float64) bool {
			return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
		}
		return left.N() == whole.N() &&
			closeRel(left.Mean(), whole.Mean()) &&
			closeRel(left.Variance(), whole.Variance())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
