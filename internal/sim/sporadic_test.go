package sim

import (
	"strings"
	"testing"

	"nprt/internal/task"
	"nprt/internal/trace"
)

func sporadicSet(t *testing.T) *task.Set {
	return mkSet(t,
		task.Task{Name: "a", Period: 20, WCETAccurate: 6, WCETImprecise: 2,
			Error: task.Dist{Mean: 1}},
		task.Task{Name: "b", Period: 40, WCETAccurate: 10, WCETImprecise: 4,
			Error: task.Dist{Mean: 2}},
	)
}

func TestZeroJitterMatchesPeriodic(t *testing.T) {
	s := sporadicSet(t)
	periodic, err := Run(s, &edfPolicy{mode: task.Imprecise}, Config{Hyperperiods: 10, TraceLimit: -1})
	if err != nil {
		t.Fatal(err)
	}
	jit := NewRandomJitter(s, make([]task.Dist, s.Len()), 5) // all zero dists
	sporadic, err := Run(s, &edfPolicy{mode: task.Imprecise}, Config{
		Hyperperiods: 10, TraceLimit: -1, Jitter: jit,
	})
	if err != nil {
		t.Fatal(err)
	}
	if periodic.Jobs != sporadic.Jobs {
		t.Fatalf("job counts differ: %d vs %d", periodic.Jobs, sporadic.Jobs)
	}
	for i := range periodic.Trace.Entries {
		if periodic.Trace.Entries[i] != sporadic.Trace.Entries[i] {
			t.Fatalf("entry %d differs under zero jitter", i)
		}
	}
}

func TestSporadicReleasesRespectMinimumSeparation(t *testing.T) {
	s := sporadicSet(t)
	dists := []task.Dist{
		{Mean: 3, Sigma: 2, Min: 0, Max: 8},
		{Mean: 5, Sigma: 3, Min: 0, Max: 12},
	}
	res, err := Run(s, &edfPolicy{mode: task.Imprecise}, Config{
		Hyperperiods: 50, TraceLimit: -1,
		Jitter: NewRandomJitter(s, dists, 7),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Collect release times per task from the trace and check separation
	// and window consistency.
	lastRelease := map[int]task.Time{}
	jittered := false
	for _, e := range res.Trace.Entries {
		tk := s.Task(e.Job.TaskID)
		if e.Job.Deadline-e.Job.Release != tk.Period {
			t.Fatalf("job %v window is not one period", e.Job)
		}
		if prev, ok := lastRelease[e.Job.TaskID]; ok {
			if e.Job.Release-prev < tk.Period {
				t.Fatalf("releases of task %d separated by %d < period %d",
					e.Job.TaskID, e.Job.Release-prev, tk.Period)
			}
			if e.Job.Release-prev > tk.Period {
				jittered = true
			}
		}
		lastRelease[e.Job.TaskID] = e.Job.Release
	}
	if !jittered {
		t.Error("jitter never stretched an inter-release gap")
	}
	if vs := trace.Validate(res.Trace, trace.Options{WCETBounds: true, Set: s}); len(vs) != 0 {
		t.Errorf("violations: %v", vs[0])
	}
}

func TestSporadicDeterministic(t *testing.T) {
	s := sporadicSet(t)
	dists := []task.Dist{{Mean: 3, Sigma: 2, Min: 0, Max: 8}, {Mean: 5, Sigma: 3, Min: 0, Max: 12}}
	run := func() *Result {
		res, err := Run(s, &edfPolicy{mode: task.Imprecise}, Config{
			Hyperperiods: 20, TraceLimit: -1, Jitter: NewRandomJitter(s, dists, 7),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Jobs != b.Jobs || a.MeanError() != b.MeanError() {
		t.Error("sporadic runs not reproducible")
	}
}

// futureCommitPolicy mimics the OA family: it commits to an unreleased job.
type futureCommitPolicy struct{ done bool }

func (p *futureCommitPolicy) Name() string { return "future-commit" }
func (p *futureCommitPolicy) Reset(*State) { p.done = false }
func (p *futureCommitPolicy) Pick(st *State) (Decision, bool) {
	if !p.done {
		p.done = true
		return Decision{Job: st.Set().Job(1, 1), Mode: task.Accurate}, true
	}
	j, ok := st.EDFPick()
	if !ok {
		return Decision{}, false
	}
	return Decision{Job: j, Mode: task.Accurate}, true
}
func (p *futureCommitPolicy) JobFinished(*State, Decision, task.Time, task.Time) {}

func TestFutureCommitRejectedUnderJitter(t *testing.T) {
	s := sporadicSet(t)
	dists := []task.Dist{{Mean: 3, Sigma: 2, Min: 0, Max: 8}, {Mean: 5, Sigma: 3, Min: 0, Max: 12}}
	_, err := Run(s, &futureCommitPolicy{}, Config{
		Hyperperiods: 5, Jitter: NewRandomJitter(s, dists, 7),
	})
	if err == nil || !strings.Contains(err.Error(), "sporadic") {
		t.Errorf("future commitment under jitter not rejected: %v", err)
	}
}
