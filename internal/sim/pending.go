package sim

import (
	"nprt/internal/pq"
	"nprt/internal/task"
)

// EngineKind selects the dispatch-core implementation of a run.
type EngineKind uint8

const (
	// EngineIndexed is the production dispatch core: pending jobs live in an
	// indexed deadline-ordered heap (EDF total order), so EDFPick is an O(1)
	// peek and removing a dispatched job is O(log n). A second,
	// release-ordered indexed heap is materialized lazily the first time a
	// policy asks for NextReleaseTime and maintained incrementally from then
	// on, so the ESR idle-slack query is O(1) instead of an O(n) rescan.
	EngineIndexed EngineKind = iota
	// EngineLinearScan is the pre-heap reference implementation, retained
	// verbatim: an unordered slice walked on every EDFPick, NextReleaseTime
	// and removal. It exists so differential tests can prove the indexed
	// engine bit-identical and so benchmarks have a baseline; production
	// callers should leave Config.Engine at the default.
	EngineLinearScan
)

// releaseBefore orders pending jobs by release time; the task-ID/index
// tie-break makes it a total order so heap minima are unique (only the
// minimum release *value* is ever observed, but a total order keeps the
// structure canonical).
func releaseBefore(a, b task.Job) bool {
	if a.Release != b.Release {
		return a.Release < b.Release
	}
	if a.TaskID != b.TaskID {
		return a.TaskID < b.TaskID
	}
	return a.Index < b.Index
}

// packKey packs a JobKey into one word so the indexed heaps hash a single
// uint64 instead of a 16-byte struct. Task IDs and job indices are both far
// below 2^32 (indices are bounded by hyper-periods times jobs per
// hyper-period), so the packing is collision-free.
func packKey(k task.JobKey) uint64 {
	return uint64(uint32(k.TaskID))<<32 | uint64(uint32(k.Index))
}

// pendingQueue is the engine's released-but-unexecuted job set, in either
// the indexed-heap or the linear-scan representation. All buffers are
// retained across runs when the owning State is pooled.
type pendingQueue struct {
	linear bool

	// Linear-scan representation (EngineLinearScan): insertion-ordered.
	list []task.Job

	// Indexed representation (EngineIndexed).
	byDeadline *pq.IndexedHeap[uint64, task.Job]
	byRelease  *pq.IndexedHeap[uint64, task.Job]
	relTracked bool // byRelease is live and mirrors byDeadline
}

// reset prepares the queue for a fresh run, keeping heap/slice capacity.
func (p *pendingQueue) reset(linear bool) {
	p.linear = linear
	p.list = p.list[:0]
	p.relTracked = false
	if p.byDeadline == nil {
		p.byDeadline = pq.NewIndexed[uint64](edfBefore)
	} else {
		p.byDeadline.Clear()
	}
	if p.byRelease != nil {
		p.byRelease.Clear()
	}
}

// size returns the number of pending jobs.
func (p *pendingQueue) size() int {
	if p.linear {
		return len(p.list)
	}
	return p.byDeadline.Len()
}

// push adds a newly released job.
func (p *pendingQueue) push(j task.Job) {
	if p.linear {
		p.list = append(p.list, j)
		return
	}
	k := packKey(j.Key())
	p.byDeadline.Push(k, j)
	if p.relTracked {
		p.byRelease.Push(k, j)
	}
}

// remove deletes the job with the given key; reports whether it was present.
func (p *pendingQueue) remove(key task.JobKey) bool {
	if p.linear {
		for i := range p.list {
			if p.list[i].Key() == key {
				last := len(p.list) - 1
				p.list[i] = p.list[last]
				p.list = p.list[:last]
				return true
			}
		}
		return false
	}
	k := packKey(key)
	if _, ok := p.byDeadline.Remove(k); !ok {
		return false
	}
	if p.relTracked {
		p.byRelease.Remove(k)
	}
	return true
}

// peekEDF returns the pending job with the earliest deadline under the EDF
// total order (deadline, release, task ID, index).
func (p *pendingQueue) peekEDF() (task.Job, bool) {
	if p.linear {
		if len(p.list) == 0 {
			return task.Job{}, false
		}
		best := p.list[0]
		for _, j := range p.list[1:] {
			if edfBefore(j, best) {
				best = j
			}
		}
		return best, true
	}
	return p.byDeadline.Peek()
}

// minRelease returns the earliest release time among pending jobs other
// than exclude.
func (p *pendingQueue) minRelease(exclude task.JobKey) (task.Time, bool) {
	if p.linear {
		var best task.Time
		found := false
		for _, j := range p.list {
			if j.Key() == exclude {
				continue
			}
			if !found || j.Release < best {
				best, found = j.Release, true
			}
		}
		return best, found
	}
	if !p.relTracked {
		p.trackReleases()
	}
	j, ok := p.byRelease.PeekExcluding(packKey(exclude))
	if !ok {
		return 0, false
	}
	return j.Release, true
}

// trackReleases builds the release-ordered mirror from the current pending
// set. Policies that never query NextReleaseTime (fixed-mode EDF, the
// offline+OA family) therefore never pay for the second heap.
func (p *pendingQueue) trackReleases() {
	if p.byRelease == nil {
		p.byRelease = pq.NewIndexed[uint64](releaseBefore)
	}
	for _, j := range p.byDeadline.Items() {
		p.byRelease.Push(packKey(j.Key()), j)
	}
	p.relTracked = true
}

// jobs exposes the pending set as an unordered read-only slice.
func (p *pendingQueue) jobs() []task.Job {
	if p.linear {
		return p.list
	}
	return p.byDeadline.Items()
}

// dropLate removes every pending job whose deadline is at or before now,
// calling drop for each. In the indexed representation late jobs are by
// construction at the top of the deadline heap, so shedding is O(k log n)
// for k dropped jobs rather than a full rescan.
func (p *pendingQueue) dropLate(now task.Time, drop func(task.Job)) {
	if p.linear {
		kept := p.list[:0]
		for _, j := range p.list {
			if j.Deadline <= now {
				drop(j)
				continue
			}
			kept = append(kept, j)
		}
		p.list = kept
		return
	}
	for {
		j, ok := p.byDeadline.Peek()
		if !ok || j.Deadline > now {
			return
		}
		k := packKey(j.Key())
		p.byDeadline.Remove(k)
		if p.relTracked {
			p.byRelease.Remove(k)
		}
		drop(j)
	}
}
