package sim

import (
	"reflect"
	"strings"
	"testing"

	"nprt/internal/task"
	"nprt/internal/trace"
)

// loadedSet is a near-fully-utilized schedulable set (U_acc = 0.9): a single
// overrun eats the slack and cascades, which is what the containment
// policies are measured against.
func loadedSet(t *testing.T) *task.Set {
	return mkSet(t,
		task.Task{Name: "a", Period: 10, WCETAccurate: 5, WCETImprecise: 2, Error: task.Dist{Mean: 2}},
		task.Task{Name: "b", Period: 20, WCETAccurate: 8, WCETImprecise: 3, Error: task.Dist{Mean: 5}},
	)
}

func TestFaultRatesValidate(t *testing.T) {
	bad := []FaultRates{
		{OverrunProb: -0.1},
		{AbortProb: 1.5},
		{DropProb: 2},
		{OverrunProb: 0.6, AbortProb: 0.3, DropProb: 0.2}, // sum > 1
		{OverrunProb: 0.1, OverrunFactor: -1},
		{AbortProb: 0.1, AbortPoint: 1.5},
	}
	for _, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("rates %+v validated", r)
		}
	}
	if err := (FaultRates{OverrunProb: 0.3, AbortProb: 0.3, DropProb: 0.3}).Validate(); err != nil {
		t.Errorf("valid rates rejected: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("NewFaultPlan accepted invalid rates without panicking")
		}
	}()
	NewFaultPlan(1, FaultRates{DropProb: 2})
}

func TestFaultPlanDeterministicAndOrderIndependent(t *testing.T) {
	s := loadedSet(t)
	fp := NewFaultPlan(42, FaultRates{OverrunProb: 0.1, AbortProb: 0.05, DropProb: 0.05})
	fp2 := NewFaultPlan(42, FaultRates{OverrunProb: 0.1, AbortProb: 0.05, DropProb: 0.05})
	tk := s.Task(0)
	// Query fp forward and fp2 backward: verdicts must agree per identity.
	const n = 2000
	fwd := make([]Fault, n)
	for i := 0; i < n; i++ {
		fwd[i] = fp.JobFault(tk, s.Job(0, i))
	}
	counts := map[FaultKind]int{}
	for i := n - 1; i >= 0; i-- {
		got := fp2.JobFault(tk, s.Job(0, i))
		if got != fwd[i] {
			t.Fatalf("verdict for job %d depends on query order: %+v vs %+v", i, fwd[i], got)
		}
		counts[got.Kind]++
		if fp.DropRelease(tk, i) != fp2.DropRelease(tk, i) {
			t.Fatalf("DropRelease for %d not deterministic", i)
		}
	}
	// Rates should land near their nominal probabilities (loose 2x bands).
	if o := counts[FaultOverrun]; o < n/20 || o > n/5 {
		t.Errorf("overrun count %d far from nominal %d", o, n/10)
	}
	if a := counts[FaultAbort]; a < n/40 || a > n/10 {
		t.Errorf("abort count %d far from nominal %d", a, n/20)
	}
	// A different seed must produce a different scenario.
	diff := 0
	other := NewFaultPlan(43, FaultRates{OverrunProb: 0.1, AbortProb: 0.05, DropProb: 0.05})
	for i := 0; i < n; i++ {
		if other.JobFault(tk, s.Job(0, i)).Kind != fwd[i].Kind {
			diff++
		}
	}
	if diff == 0 {
		t.Error("seed has no effect on fault scenario")
	}
}

// TestNoFaultBitIdentical is the acceptance differential: with injection
// disabled — Faults nil, or a plan whose rates are all zero — every Result
// field except the Faults accounting block is bit-identical.
func TestNoFaultBitIdentical(t *testing.T) {
	s := loadedSet(t)
	for _, eng := range []EngineKind{EngineIndexed, EngineLinearScan} {
		base := Config{
			Hyperperiods: 25, Sampler: NewRandomSampler(s, 7),
			TraceLimit: -1, DropLate: true, Engine: eng,
		}
		clean, err := Run(s, &edfPolicy{mode: task.Imprecise}, base)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range Containments() {
			cfg := base
			cfg.Sampler = NewRandomSampler(s, 7)
			cfg.Faults = NewFaultPlan(11, FaultRates{})
			cfg.Containment = c
			faulted, err := Run(s, &edfPolicy{mode: task.Imprecise}, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if faulted.Faults == nil {
				t.Fatal("zero-rate plan should still produce a Faults block")
			}
			if faulted.Faults.Total != (TaskFaultStats{}) {
				t.Errorf("zero-rate plan injected faults: %+v", faulted.Faults.Total)
			}
			cp := *faulted
			cp.Faults = nil
			if !reflect.DeepEqual(clean, &cp) {
				t.Errorf("engine %v containment %v: zero-rate run differs from fault-free run\nclean:   %v\nfaulted: %v",
					eng, c, clean, &cp)
			}
		}
	}
}

// TestContainmentReducesCascades is the acceptance sweep in miniature: at
// overrun probability ≥ 0.05 both containment policies must strictly reduce
// cascaded (collateral) deadline misses versus the uncontained baseline.
func TestContainmentReducesCascades(t *testing.T) {
	s := loadedSet(t)
	run := func(c Containment) *Result {
		res, err := Run(s, &edfPolicy{mode: task.Accurate}, Config{
			Hyperperiods: 400,
			Faults:       NewFaultPlan(3, FaultRates{OverrunProb: 0.1, OverrunFactor: 2.0}),
			Containment:  c,
		})
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		return res
	}
	rtc := run(RunToCompletion)
	abort := run(AbortAtBudget)
	down := run(DowngradeOnOverrun)

	if rtc.Faults.Total.CascadedMisses == 0 {
		t.Fatal("baseline produced no cascaded misses; the scenario is too lax to measure containment")
	}
	if got, base := abort.Faults.Total.CascadedMisses, rtc.Faults.Total.CascadedMisses; got >= base {
		t.Errorf("AbortAtBudget cascaded misses %d not strictly below baseline %d", got, base)
	}
	if got, base := down.Faults.Total.CascadedMisses, rtc.Faults.Total.CascadedMisses; got >= base {
		t.Errorf("DowngradeOnOverrun cascaded misses %d not strictly below baseline %d", got, base)
	}

	// The watchdog never lets overrun time reach the processor and kills
	// exactly the overrunning jobs.
	if abort.Faults.OverrunTime != 0 {
		t.Errorf("AbortAtBudget leaked %d overrun time units", abort.Faults.OverrunTime)
	}
	if abort.Faults.Total.WatchdogKills != abort.Faults.Total.Overruns {
		t.Errorf("kills %d != overruns %d", abort.Faults.Total.WatchdogKills, abort.Faults.Total.Overruns)
	}
	if rtc.Faults.OverrunTime == 0 {
		t.Error("RunToCompletion recorded no overrun time")
	}
	// Downgrading actually fired and forced jobs imprecise.
	if down.Faults.Total.Downgrades == 0 {
		t.Error("DowngradeOnOverrun never downgraded a job")
	}
	if down.Imprecise == 0 {
		t.Error("DowngradeOnOverrun ran no imprecise jobs")
	}
	// Watchdog kills are failures and count as (faulted) misses.
	if abort.Faults.Total.FaultedMisses < abort.Faults.Total.WatchdogKills {
		t.Errorf("faulted misses %d below watchdog kills %d",
			abort.Faults.Total.FaultedMisses, abort.Faults.Total.WatchdogKills)
	}
}

func TestDroppedReleasesAccounting(t *testing.T) {
	s := loadedSet(t)
	cfg := Config{Hyperperiods: 200}
	clean, err := Run(s, &edfPolicy{mode: task.Accurate}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = NewFaultPlan(9, FaultRates{DropProb: 0.1})
	res, err := Run(s, &edfPolicy{mode: task.Accurate}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	drops := res.Faults.Total.DroppedReleases
	if drops == 0 {
		t.Fatal("no releases dropped at DropProb=0.1")
	}
	// Every release is accounted: executed or dropped, the job total holds.
	if res.Jobs != clean.Jobs {
		t.Errorf("job total %d != clean total %d", res.Jobs, clean.Jobs)
	}
	// Drops are faulted misses charging the deepest-level mean error.
	if res.Faults.Total.FaultedMisses != drops {
		t.Errorf("faulted misses %d != drops %d", res.Faults.Total.FaultedMisses, drops)
	}
	if res.Misses.Events < drops {
		t.Errorf("miss count %d below drop count %d", res.Misses.Events, drops)
	}
	if res.MeanError() <= 0 {
		t.Error("dropped releases charged no fallback error")
	}
}

func TestAbortsShortenAndChargeFallback(t *testing.T) {
	s := loadedSet(t)
	res, err := Run(s, &edfPolicy{mode: task.Accurate}, Config{
		Hyperperiods: 200, TraceLimit: -1,
		Faults: NewFaultPlan(5, FaultRates{AbortProb: 0.1, AbortPoint: 0.5}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Total.Aborts == 0 {
		t.Fatal("no aborts at AbortProb=0.1")
	}
	if res.Faults.Total.FaultedMisses < res.Faults.Total.Aborts {
		t.Errorf("aborted jobs must all miss: %d misses < %d aborts",
			res.Faults.Total.FaultedMisses, res.Faults.Total.Aborts)
	}
	died := 0
	for _, e := range res.Trace.Entries {
		if e.Fault == trace.FaultDied {
			died++
			w := s.Task(e.Job.TaskID).WCET(e.Mode)
			if d := e.Duration(); d < 1 || d > w {
				t.Fatalf("died entry duration %d outside [1,%d]", d, w)
			}
			if e.Error != s.Task(e.Job.TaskID).ErrorDist(task.Deepest).Mean {
				t.Fatalf("died entry charged %g, want deepest mean", e.Error)
			}
		}
	}
	if int64(died) != res.Faults.Total.Aborts {
		t.Errorf("trace has %d died entries, stats say %d", died, res.Faults.Total.Aborts)
	}
}

// TestFaultedTraceValidates: the validator accepts-and-checks faulted traces
// under AllowFaults and rejects the same trace under the strict oracle.
func TestFaultedTraceValidates(t *testing.T) {
	s := loadedSet(t)
	for _, c := range Containments() {
		res, err := Run(s, &edfPolicy{mode: task.Accurate}, Config{
			Hyperperiods: 100, TraceLimit: -1,
			Sampler:     NewRandomSampler(s, 21),
			Faults:      NewFaultPlan(13, FaultRates{OverrunProb: 0.08, AbortProb: 0.04, DropProb: 0.03}),
			Containment: c,
		})
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		vs := trace.Validate(res.Trace, trace.Options{
			WCETBounds: true, Set: s, AllowFaults: true,
		})
		if len(vs) != 0 {
			t.Errorf("%v: faulted trace rejected under AllowFaults: %v", c, vs[:min(3, len(vs))])
		}
		strict := trace.Validate(res.Trace, trace.Options{WCETBounds: true, Set: s})
		if len(strict) == 0 {
			t.Errorf("%v: strict oracle accepted a faulted trace", c)
		}
	}
}

func TestDowngradeRecovery(t *testing.T) {
	s := loadedSet(t)
	res, err := Run(s, &edfPolicy{mode: task.Accurate}, Config{
		Hyperperiods: 300, TraceLimit: -1,
		Faults:      NewFaultPlan(17, FaultRates{OverrunProb: 0.05, OverrunFactor: 1.8}),
		Containment: DowngradeOnOverrun,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Recovery means downgrading is bounded: with in-budget completions
	// clearing the flag, downgraded jobs cannot dominate the run at 5%
	// overrun probability.
	if d := res.Faults.Total.Downgrades; d == 0 || d > res.Jobs/2 {
		t.Errorf("downgrades %d out of expected band (0, %d]", res.Faults.Total.Downgrades, res.Jobs/2)
	}
	// After an overrun of a task, the next executed job of that task must be
	// imprecise (the forced downgrade) — check the first occurrence.
	entries := res.Trace.Entries
	for i, e := range entries {
		if e.Fault == trace.FaultOverrun {
			for _, f := range entries[i+1:] {
				if f.Job.TaskID != e.Job.TaskID {
					continue
				}
				if f.Mode == task.Accurate && f.Fault != trace.FaultOverrun {
					t.Fatalf("job after overrun of task %d ran accurate: %+v", e.Job.TaskID, f)
				}
				break
			}
			break
		}
	}
}

func TestEnginesAgreeUnderFaults(t *testing.T) {
	s := loadedSet(t)
	mk := func(eng EngineKind) *Result {
		res, err := Run(s, &edfPolicy{mode: task.Accurate}, Config{
			Hyperperiods: 120, TraceLimit: -1, DropLate: true,
			Sampler:     NewRandomSampler(s, 31),
			Faults:      NewFaultPlan(19, FaultRates{OverrunProb: 0.06, AbortProb: 0.04, DropProb: 0.04}),
			Containment: DowngradeOnOverrun,
			Engine:      eng,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(EngineIndexed), mk(EngineLinearScan)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("engines disagree under faults:\nindexed: %v %v\nlinear:  %v %v",
			a, a.Faults, b, b.Faults)
	}
}

func TestFaultStringers(t *testing.T) {
	for k, want := range map[FaultKind]string{
		FaultNone: "none", FaultOverrun: "overrun", FaultAbort: "abort",
		FaultDroppedRelease: "dropped-release",
	} {
		if k.String() != want {
			t.Errorf("FaultKind %d = %q", k, k.String())
		}
	}
	for c, want := range map[Containment]string{
		RunToCompletion: "run-to-completion", AbortAtBudget: "abort-at-budget",
		DowngradeOnOverrun: "downgrade-on-overrun",
	} {
		if c.String() != want {
			t.Errorf("Containment %d = %q", c, c.String())
		}
	}
	fs := newFaultStats(1)
	fs.count(0, func(s *TaskFaultStats) { s.Overruns++ })
	if out := fs.String(); !strings.Contains(out, "overruns=1") {
		t.Errorf("FaultStats.String = %q", out)
	}
}
