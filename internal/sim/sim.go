// Package sim is the discrete-event uniprocessor testbed the paper's
// evaluation runs on: a virtual-time, non-preemptive executor for periodic
// task sets. A scheduling Policy is consulted whenever the processor is
// free; the engine samples actual execution times and imprecision errors,
// advances the clock, and accumulates the metrics reported in Tables II/III
// (deadline-violation rates, per-job mean error and standard deviation,
// mode counts).
//
// Virtual time makes runs bit-reproducible and lets a "10K hyper-periods"
// experiment finish in milliseconds of wall time, which is the substitution
// this reproduction makes for the authors' wall-clock testbed.
package sim

import (
	"fmt"
	"math"
	"sync"

	"nprt/internal/pq"
	"nprt/internal/rng"
	"nprt/internal/stats"
	"nprt/internal/task"
	"nprt/internal/trace"
)

// Decision is a policy's dispatch choice: which job to run next and in
// which accuracy mode. The job may be unreleased; the engine then idles
// until its release (offline policies exploit this to enforce an order).
type Decision struct {
	Job  task.Job
	Mode task.Mode
}

// Policy is a non-preemptive scheduling policy. The engine calls Pick every
// time the processor becomes free; returning ok=false idles the processor
// until the next job release.
//
// Policies may additionally implement Validator (pre-run compatibility
// checks) and DropAware (notification of fault-dropped releases).
type Policy interface {
	// Name identifies the policy in reports ("EDF+ESR", "Flipped EDF", ...).
	Name() string
	// Reset prepares the policy for a fresh run over st.Set().
	Reset(st *State)
	// Pick chooses the next job and mode given the engine state.
	Pick(st *State) (Decision, bool)
	// JobFinished reports the actual start/finish of the decided job.
	JobFinished(st *State, d Decision, start, finish task.Time)
}

// Validator is an optional Policy extension: a policy that can detect up
// front that it is incompatible with a set (an offline plan built for a
// different job population, say) implements it, and Run reports the error
// instead of running — or panicking — on the mismatch.
type Validator interface {
	// ValidateFor reports why the policy cannot drive the set, or nil.
	ValidateFor(s *task.Set) error
}

// JitterSampler supplies sporadic release jitter: the extra delay (>= 0)
// between a job's minimum release point and its actual release. Periodic
// tasks are the zero-jitter special case. Theorem 1 remains a sufficient
// schedulability condition for sporadic tasks with the period read as the
// minimum inter-release separation (Jeffay et al.), so the online policies
// keep their guarantees; the offline methods require known release times
// and reject sporadic runs.
type JitterSampler interface {
	// ReleaseJitter returns the extra delay before release `index` of the
	// task. Must be non-negative.
	ReleaseJitter(t *task.Task, index int) task.Time
}

// RandomJitter samples truncated-Gaussian release jitter per task from
// deterministic streams.
type RandomJitter struct {
	dists   []task.Dist
	streams []*rng.Stream
}

// NewRandomJitter builds a jitter sampler; dists[i] parameterizes task i's
// jitter (zero Dist = strictly periodic task).
func NewRandomJitter(s *task.Set, dists []task.Dist, seed uint64) *RandomJitter {
	root := rng.New(seed ^ 0x6a09e667f3bcc908)
	rj := &RandomJitter{dists: dists, streams: make([]*rng.Stream, s.Len())}
	for i := range rj.streams {
		rj.streams[i] = root.Split(uint64(i))
	}
	return rj
}

// ReleaseJitter implements JitterSampler.
func (rj *RandomJitter) ReleaseJitter(t *task.Task, _ int) task.Time {
	d := rj.dists[t.ID]
	if d.IsZero() {
		return 0
	}
	v := task.Time(rj.streams[t.ID].SampleDist(d))
	if v < 0 {
		v = 0
	}
	return v
}

// Sampler supplies actual execution times and imprecision errors.
type Sampler interface {
	// ExecTime returns the actual execution time of job j of t in mode m.
	// Must be in [1, t.WCET(m)].
	ExecTime(t *task.Task, j task.Job, m task.Mode) task.Time
	// Error returns the single-valued error of one execution of job j in
	// (non-accurate) mode m.
	Error(t *task.Task, j task.Job, m task.Mode) float64
}

// RandomSampler draws truncated-Gaussian execution times (capped at the
// mode's WCET) and Gaussian-magnitude errors from per-task streams, as in
// the paper's simulation setup (§VI-A).
type RandomSampler struct {
	exec []*rng.Stream // one per task
	errs []*rng.Stream
}

// NewRandomSampler builds a sampler for the set with the given root seed.
func NewRandomSampler(s *task.Set, seed uint64) *RandomSampler {
	root := rng.New(seed)
	rs := &RandomSampler{
		exec: make([]*rng.Stream, s.Len()),
		errs: make([]*rng.Stream, s.Len()),
	}
	for i := 0; i < s.Len(); i++ {
		rs.exec[i] = root.Split(uint64(2 * i))
		rs.errs[i] = root.Split(uint64(2*i + 1))
	}
	return rs
}

// ExecTime samples the mode's execution-time distribution, capped at WCET.
func (rs *RandomSampler) ExecTime(t *task.Task, _ task.Job, m task.Mode) task.Time {
	return rs.exec[t.ID].SampleDuration(t.ExecDist(m), t.WCET(m))
}

// Error samples |N(e, σ)| from the mode's error distribution.
func (rs *RandomSampler) Error(t *task.Task, _ task.Job, m task.Mode) float64 {
	return rs.errs[t.ID].SampleError(t.ErrorDist(m))
}

// WorstCaseSampler runs every job at exactly its WCET and charges the mean
// error — the deterministic setting used by unit tests and by schedulability
// arguments.
type WorstCaseSampler struct{}

// ExecTime returns the mode's WCET.
func (WorstCaseSampler) ExecTime(t *task.Task, _ task.Job, m task.Mode) task.Time {
	return t.WCET(m)
}

// Error returns the mode's pre-characterized mean error.
func (WorstCaseSampler) Error(t *task.Task, _ task.Job, m task.Mode) float64 {
	return t.ErrorDist(m).Mean
}

// Config parameterizes one simulation run.
type Config struct {
	Hyperperiods int     // number of hyper-periods to simulate (>= 1)
	Sampler      Sampler // defaults to WorstCaseSampler{}
	TraceLimit   int     // keep at most this many trace entries (0 = none, <0 = all)
	// StopOnMiss aborts the run at the first deadline miss (used by
	// feasibility probes; production experiments keep running and count).
	StopOnMiss bool
	// DropLate discards pending jobs whose deadline has already passed
	// instead of executing them late: each drop counts as a deadline
	// violation. This is how an overloaded baseline (EDF-Accurate on the
	// over-utilized Table I cases) keeps a bounded backlog and yields the
	// intermediate violation percentages the paper reports.
	DropLate bool
	// Jitter, when non-nil, makes releases sporadic: each job is released
	// Jitter(...) after its earliest possible point (the previous release
	// plus the period). Policies that commit to future jobs by their
	// periodic release times (the offline+OA family) are rejected under
	// jitter.
	Jitter JitterSampler
	// Engine selects the dispatch-core implementation. EngineIndexed (the
	// zero value) is the production O(log n) core; EngineLinearScan is the
	// retained reference used by differential tests and benchmark baselines.
	// Both produce bit-identical Results.
	Engine EngineKind
	// Faults, when non-nil, injects model violations: WCET overruns,
	// mid-execution aborts and dropped releases (see FaultPlan). With
	// Faults nil — the default — every fault code path is skipped and runs
	// are bit-identical to the fault-free engine. Composes with Jitter.
	Faults FaultSampler
	// Containment selects the response to budget violations when Faults is
	// set (ignored otherwise). The zero value RunToCompletion is the
	// uncontained baseline.
	Containment Containment
}

// Result aggregates one run.
type Result struct {
	Policy       string
	Jobs         int64
	Misses       stats.Rate        // deadline violations per job
	Error        stats.Accumulator // per-job error (accurate jobs contribute 0)
	PerTaskError []stats.Accumulator
	// PerTaskResponse tracks response times (finish − release) of executed
	// jobs, a standard real-time quality metric alongside the paper's error
	// statistics. Dropped jobs (DropLate) are not included.
	PerTaskResponse []stats.Accumulator
	Accurate        int64 // executions per mode
	Imprecise       int64
	Busy            task.Time // total executed time
	Horizon         task.Time
	// MaxLateness is the largest finish − deadline over executed jobs
	// (0 when nothing finished late). Dropped jobs are not included; their
	// misses are already counted. Overload governors use this alongside the
	// miss rate to grade how badly a window overran.
	MaxLateness task.Time
	Trace           *trace.Trace // first TraceLimit entries (nil when TraceLimit == 0)
	Aborted         bool         // true when StopOnMiss fired
	// Faults is the fault-injection accounting; nil when Config.Faults was
	// nil. Failed jobs (watchdog kills, crashes, dropped releases) count as
	// deadline misses and charge the task's deepest-level mean error (the
	// stale-fallback quality); their response times are not recorded.
	Faults *FaultStats
}

// MeanError returns the per-job mean error (the Table II statistic).
func (r *Result) MeanError() float64 { return r.Error.Mean() }

// ErrorStdDev returns the per-job error standard deviation σ.
func (r *Result) ErrorStdDev() float64 { return r.Error.StdDev() }

// MissPercent returns the deadline-violation percentage.
func (r *Result) MissPercent() float64 { return r.Misses.Percent() }

// String renders a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("%s: jobs=%d miss=%.1f%% err=%.4g±%.4g acc=%d imp=%d",
		r.Policy, r.Jobs, r.MissPercent(), r.MeanError(), r.ErrorStdDev(),
		r.Accurate, r.Imprecise)
}

// release is a pending task-release event.
type release struct {
	at     task.Time
	taskID int
}

// State is the engine view a policy sees. It is valid only during the
// callbacks of one Run: the engine pools and reuses State instances (and
// their internal heap buffers) across runs, so policies must not retain a
// *State or any slice obtained from it past the end of a run.
type State struct {
	set     *task.Set
	now     task.Time
	horizon task.Time

	pend      pendingQueue // released, not yet executed
	releases  *pq.Heap[release]
	nextIndex []int // per task: next job index to release

	jobsPerP []int // per task: jobs per hyper-period

	jitter JitterSampler // nil = strictly periodic

	faults   FaultSampler   // nil = no injection
	onDrop   func(task.Job) // accounting hook for dropped releases (set by Run)
	degraded []bool         // per task: forced-imprecise under DowngradeOnOverrun
}

// statePool recycles run state — the pending-queue heaps, the release event
// queue and the per-task index slices — across the thousands of Run calls
// an experiment sweep makes, so a warm sweep allocates per run only what
// escapes into the Result.
var statePool = sync.Pool{New: func() any { return new(State) }}

// reset prepares a (possibly recycled) State for a fresh run.
func (st *State) reset(s *task.Set, cfg Config) {
	st.set = s
	st.now = 0
	st.horizon = s.MaxRelease() + task.Time(cfg.Hyperperiods)*s.Hyperperiod()
	st.jitter = cfg.Jitter
	st.pend.reset(cfg.Engine == EngineLinearScan)
	if st.releases == nil {
		st.releases = pq.New(func(a, b release) bool { return a.at < b.at })
	} else {
		st.releases.Clear()
	}
	st.nextIndex = resizedZeroed(st.nextIndex, s.Len())
	st.jobsPerP = resizedZeroed(st.jobsPerP, s.Len())
	st.faults = cfg.Faults
	st.onDrop = nil
	st.degraded = st.degraded[:0]
	if cfg.Faults != nil {
		st.degraded = resizedFalse(st.degraded, s.Len())
	}
}

// resizedFalse returns a length-n all-false slice, reusing capacity.
func resizedFalse(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

// resizedZeroed returns a length-n all-zero slice, reusing capacity.
func resizedZeroed(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// Sporadic reports whether the run has sporadic (jittered) releases.
func (st *State) Sporadic() bool { return st.jitter != nil }

// Set returns the task set under simulation.
func (st *State) Set() *task.Set { return st.set }

// Now returns the current virtual time.
func (st *State) Now() task.Time { return st.now }

// Horizon returns the end of the simulated window.
func (st *State) Horizon() task.Time { return st.horizon }

// Pending returns the released, unexecuted jobs (unordered, read-only;
// valid only until the engine next mutates the pending set).
func (st *State) Pending() []task.Job { return st.pend.jobs() }

// EDFPick returns the pending job with the earliest deadline, breaking ties
// by earlier release then smaller task ID (deterministic EDF). With the
// indexed engine this is an O(1) heap peek.
func (st *State) EDFPick() (task.Job, bool) {
	return st.pend.peekEDF()
}

func edfBefore(a, b task.Job) bool {
	if a.Deadline != b.Deadline {
		return a.Deadline < b.Deadline
	}
	if a.Release != b.Release {
		return a.Release < b.Release
	}
	if a.TaskID != b.TaskID {
		return a.TaskID < b.TaskID
	}
	return a.Index < b.Index
}

// NextReleaseTime returns the earliest release time among unreleased future
// jobs and pending jobs other than exclude; ok is false when no such job
// exists within the horizon. This is the r_next of the ESR idle-slack rule.
// With the indexed engine both candidates are O(1) heap peeks; the
// release-ordered mirror heap is maintained incrementally from the first
// call on instead of being rescanned per dispatch.
func (st *State) NextReleaseTime(exclude task.JobKey) (task.Time, bool) {
	best, found := st.pend.minRelease(exclude)
	if r, ok := st.releases.Peek(); ok && (!found || r.at < best) {
		best, found = r.at, true
	}
	return best, found
}

// JobsPerHyperperiod returns the per-task job count in one hyper-period.
func (st *State) JobsPerHyperperiod(taskID int) int { return st.jobsPerP[taskID] }

// advanceReleases moves every job released at or before t into pending.
// Under jitter, the heap entry's time is the actual release; the next
// job's earliest point is that release plus the period (sporadic minimum
// separation).
func (st *State) advanceReleases(t task.Time) {
	for {
		r, ok := st.releases.Peek()
		if !ok || r.at > t {
			return
		}
		st.releases.Pop()
		idx := st.nextIndex[r.taskID]
		tk := st.set.Task(r.taskID)
		job := task.Job{TaskID: r.taskID, Index: idx, Release: r.at, Deadline: r.at + tk.Period}
		if st.faults != nil && st.onDrop != nil && st.faults.DropRelease(tk, idx) {
			// The activation is lost: the job never enters the pending set.
			// Subsequent releases keep their nominal separation.
			st.onDrop(job)
		} else {
			st.pend.push(job)
		}
		st.nextIndex[r.taskID]++
		nextAt := r.at + tk.Period
		if st.jitter != nil {
			nextAt += st.jitter.ReleaseJitter(tk, idx+1)
		}
		if nextAt+tk.Period <= st.horizon {
			st.releases.Push(release{at: nextAt, taskID: r.taskID})
		}
	}
}

// removePending deletes the job from the pending set; reports whether it
// was present. O(log n) with the indexed engine.
func (st *State) removePending(key task.JobKey) bool {
	return st.pend.remove(key)
}

// Run simulates the policy over cfg.Hyperperiods hyper-periods of the set.
// Only jobs whose full [release, deadline] window fits the horizon are
// released, so every job's deadline verdict is observed.
func Run(s *task.Set, p Policy, cfg Config) (*Result, error) {
	if cfg.Hyperperiods <= 0 {
		cfg.Hyperperiods = 1
	}
	sampler := cfg.Sampler
	if sampler == nil {
		sampler = WorstCaseSampler{}
	}
	if v, ok := p.(Validator); ok {
		if err := v.ValidateFor(s); err != nil {
			return nil, fmt.Errorf("sim: policy %s rejects set: %w", p.Name(), err)
		}
	}
	faults := cfg.Faults

	st := statePool.Get().(*State)
	defer statePool.Put(st)
	st.reset(s, cfg)
	for i := 0; i < s.Len(); i++ {
		st.jobsPerP[i] = int(s.Hyperperiod() / s.Task(i).Period)
		at := s.Task(i).Release
		if st.jitter != nil {
			at += st.jitter.ReleaseJitter(s.Task(i), 0)
		}
		if at+s.Task(i).Period <= st.horizon {
			st.releases.Push(release{at: at, taskID: i})
		}
	}

	// Both per-task accumulator slices escape into the Result; one backing
	// array halves that allocation.
	accs := make([]stats.Accumulator, 2*s.Len())
	res := &Result{
		Policy:          p.Name(),
		PerTaskError:    accs[:s.Len():s.Len()],
		PerTaskResponse: accs[s.Len():],
		Horizon:         st.horizon,
	}
	if cfg.TraceLimit != 0 {
		res.Trace = &trace.Trace{}
	}
	var fstats *FaultStats
	if faults != nil {
		fstats = newFaultStats(s.Len())
		res.Faults = fstats
	}

	// dropStale sheds one already-late pending job, counting the violation.
	// Under fault injection the shed job never was faulted itself (faults
	// strike at release or dispatch), so its miss is collateral damage.
	dropStale := func(j task.Job) {
		res.Jobs++
		res.Misses.Hit()
		res.Error.Add(0)
		res.PerTaskError[j.TaskID].Add(0)
		if fstats != nil {
			fstats.count(j.TaskID, func(t *TaskFaultStats) { t.CascadedMisses++ })
		}
	}
	if faults != nil {
		// A dropped release is a job that never runs: it counts as a miss
		// and charges the deepest-level mean error (the stale-result
		// fallback the system would serve in its place).
		st.onDrop = func(j task.Job) {
			tk := s.Task(j.TaskID)
			eFail := tk.ErrorDist(task.Deepest).Mean
			res.Jobs++
			res.Misses.Hit()
			res.Error.Add(eFail)
			res.PerTaskError[j.TaskID].Add(eFail)
			fstats.count(j.TaskID, func(t *TaskFaultStats) {
				t.DroppedReleases++
				t.FaultedMisses++
			})
			if da, ok := p.(DropAware); ok {
				da.JobDropped(st, j)
			}
		}
	}

	p.Reset(st)
	st.advanceReleases(0)

	for {
		if cfg.DropLate {
			st.pend.dropLate(st.now, dropStale)
		}
		if st.pend.size() == 0 {
			r, ok := st.releases.Peek()
			if !ok {
				break // no pending work and no future releases: done
			}
			if r.at > st.now {
				st.now = r.at
			}
			st.advanceReleases(st.now)
			continue
		}

		d, ok := p.Pick(st)
		if !ok {
			// Policy waits for a future release.
			r, okR := st.releases.Peek()
			if !okR {
				return nil, fmt.Errorf("sim: policy %s idles with %d pending jobs and no future releases",
					p.Name(), st.pend.size())
			}
			st.now = r.at
			st.advanceReleases(st.now)
			continue
		}

		// The decided job must be pending or a known future job of its task.
		if !st.removePending(d.Job.Key()) {
			// Allow policies to commit to an unreleased job: idle until it
			// arrives, releasing intermediate jobs of other tasks as we go.
			// Under sporadic releases future release times are unknowable,
			// so such commitments are rejected.
			if st.jitter != nil {
				return nil, fmt.Errorf("sim: policy %s committed to future job %v under sporadic releases",
					p.Name(), d.Job)
			}
			if d.Job.Release <= st.now || d.Job.Index != st.nextIndex[d.Job.TaskID] {
				if yes, err := droppedCommitment(st, p, d.Job); yes {
					continue // release was lost to fault injection; re-Pick
				} else if err != nil {
					return nil, err
				}
				return nil, fmt.Errorf("sim: policy %s picked unknown job %v at t=%d",
					p.Name(), d.Job, st.now)
			}
			st.now = d.Job.Release
			st.advanceReleases(st.now)
			if !st.removePending(d.Job.Key()) {
				if yes, err := droppedCommitment(st, p, d.Job); yes {
					continue // the committed release was dropped as time advanced
				} else if err != nil {
					return nil, err
				}
				return nil, fmt.Errorf("sim: job %v not released at its release time", d.Job)
			}
		}

		tk := s.Task(d.Job.TaskID)
		start := st.now
		if start < d.Job.Release {
			start = d.Job.Release
			st.advanceReleases(start)
		}

		// Fault injection: draw the job's verdict (a pure function of job
		// identity) and, under DowngradeOnOverrun, force the task's jobs to
		// the deepest imprecise level while it is marked degraded.
		runMode := d.Mode
		var fault Fault
		if faults != nil {
			fault = faults.JobFault(tk, d.Job)
			if cfg.Containment == DowngradeOnOverrun && st.degraded[d.Job.TaskID] {
				if deep := tk.ClampMode(task.Deepest); tk.ClampMode(runMode) != deep {
					runMode = deep
					fstats.count(d.Job.TaskID, func(t *TaskFaultStats) { t.Downgrades++ })
				}
			}
		}

		dur := sampler.ExecTime(tk, d.Job, runMode)
		if dur < 1 || dur > tk.WCET(runMode) {
			return nil, fmt.Errorf("sim: sampler produced %d outside [1,%d] for %v in %s mode",
				dur, tk.WCET(runMode), d.Job, runMode)
		}

		killed := false
		ftag := trace.FaultNone
		if faults != nil {
			tid := d.Job.TaskID
			switch fault.Kind {
			case FaultOverrun:
				fstats.count(tid, func(t *TaskFaultStats) { t.Overruns++ })
				w := tk.WCET(runMode)
				if cfg.Containment == AbortAtBudget {
					// Watchdog: the job is terminated exactly at its declared
					// budget; the processor is freed on schedule.
					dur = w
					killed = true
					fstats.count(tid, func(t *TaskFaultStats) { t.WatchdogKills++ })
				} else {
					over := task.Time(math.Ceil(fault.Factor * float64(w)))
					if over <= w {
						over = w + 1 // an overrun is strictly past budget
					}
					dur = over
					fstats.OverrunTime += over - w
					if cfg.Containment == DowngradeOnOverrun {
						st.degraded[tid] = true
					}
				}
			case FaultAbort:
				at := task.Time(fault.Point * float64(dur))
				if at < 1 {
					at = 1
				}
				if at < dur {
					dur = at
				}
				fstats.count(tid, func(t *TaskFaultStats) { t.Aborts++ })
			}
			ftag = failureTag(fault.Kind, killed)
		}
		// failed: the job produced no usable result (watchdog kill or crash).
		failed := killed || fault.Kind == FaultAbort

		finish := start + dur
		st.now = finish
		st.advanceReleases(st.now)

		var e float64
		switch {
		case failed:
			// The system serves the stale/deepest-quality fallback in place
			// of the lost result; no sampler stream is consumed.
			e = tk.ErrorDist(task.Deepest).Mean
		case runMode != task.Accurate:
			e = sampler.Error(tk, d.Job, runMode)
		}
		if runMode != task.Accurate {
			res.Imprecise++
		} else {
			res.Accurate++
		}
		res.Jobs++
		res.Error.Add(e)
		res.PerTaskError[d.Job.TaskID].Add(e)
		if !failed {
			res.PerTaskResponse[d.Job.TaskID].Add(float64(finish - d.Job.Release))
		}
		res.Busy += dur
		if late := finish - d.Job.Deadline; late > res.MaxLateness {
			res.MaxLateness = late
		}
		missed := finish > d.Job.Deadline || failed
		res.Misses.Record(missed)
		if faults != nil {
			if missed {
				if fault.Kind != FaultNone {
					fstats.count(d.Job.TaskID, func(t *TaskFaultStats) { t.FaultedMisses++ })
				} else {
					fstats.count(d.Job.TaskID, func(t *TaskFaultStats) { t.CascadedMisses++ })
				}
			}
			// A clean in-budget completion re-arms the task: downgrading ends
			// once observed execution re-enters its declared budget.
			if cfg.Containment == DowngradeOnOverrun && st.degraded[d.Job.TaskID] && fault.Kind == FaultNone {
				st.degraded[d.Job.TaskID] = false
			}
		}
		if res.Trace != nil && (cfg.TraceLimit < 0 || res.Trace.Len() < cfg.TraceLimit) {
			res.Trace.Append(trace.Entry{Job: d.Job, Mode: runMode, Start: start, Finish: finish, Error: e, Fault: ftag})
		}

		p.JobFinished(st, d, start, finish)

		if missed && cfg.StopOnMiss {
			res.Aborted = true
			return res, nil
		}
	}
	return res, nil
}

// droppedCommitment reports whether the job a policy committed to was lost
// to fault injection. DropAware policies (already notified via JobDropped)
// are sent back to Pick; any other policy gets a structured error naming the
// lost release instead of the generic unknown-job failure.
func droppedCommitment(st *State, p Policy, j task.Job) (bool, error) {
	if st.faults == nil || !st.faults.DropRelease(st.set.Task(j.TaskID), j.Index) {
		return false, nil
	}
	if _, ok := p.(DropAware); ok {
		return true, nil
	}
	return false, fmt.Errorf("sim: policy %s committed to job %v whose release was dropped by fault injection",
		p.Name(), j)
}
