package sim

import (
	"testing"

	"nprt/internal/feasibility"
	"nprt/internal/rng"
	"nprt/internal/task"
)

func TestDropLateShedsStaleJobs(t *testing.T) {
	// Overload: two tasks each needing 9 of every 10 units accurately.
	s := mkSet(t,
		task.Task{Name: "a", Period: 10, WCETAccurate: 9, WCETImprecise: 2},
		task.Task{Name: "b", Period: 10, WCETAccurate: 9, WCETImprecise: 2},
	)
	res, err := Run(s, &edfPolicy{mode: task.Accurate}, Config{Hyperperiods: 100, DropLate: true})
	if err != nil {
		t.Fatal(err)
	}
	// Every released job is accounted for: executed or dropped.
	if res.Jobs != 200 {
		t.Errorf("accounted jobs = %d, want 200", res.Jobs)
	}
	if res.Misses.Events == 0 {
		t.Error("no misses recorded under 1.8 utilization")
	}
	// With shedding, the backlog stays bounded: executed jobs must be a
	// solid fraction (roughly one per period fits).
	executed := res.Accurate + res.Imprecise
	if executed < 90 {
		t.Errorf("only %d jobs executed; shedding collapsed", executed)
	}
	if executed+res.Misses.Events < 200 {
		t.Errorf("accounting leak: executed %d + misses %d < 200", executed, res.Misses.Events)
	}
}

func TestDropLateOffRunsEverything(t *testing.T) {
	s := mkSet(t,
		task.Task{Name: "a", Period: 10, WCETAccurate: 9, WCETImprecise: 2},
		task.Task{Name: "b", Period: 10, WCETAccurate: 9, WCETImprecise: 2},
	)
	res, err := Run(s, &edfPolicy{mode: task.Accurate}, Config{Hyperperiods: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accurate != res.Jobs {
		t.Errorf("without DropLate every job must execute: %d vs %d", res.Accurate, res.Jobs)
	}
}

func TestPerTaskResponseTimes(t *testing.T) {
	// Deterministic WCET run: a executes first each period (EDF), so its
	// response is w_a; b queues behind a in the shared period.
	s := mkSet(t,
		task.Task{Name: "a", Period: 20, WCETAccurate: 6, WCETImprecise: 2},
		task.Task{Name: "b", Period: 20, WCETAccurate: 5, WCETImprecise: 2},
	)
	res, err := Run(s, &edfPolicy{mode: task.Accurate}, Config{Hyperperiods: 10})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.PerTaskResponse[0].Mean(); got != 6 {
		t.Errorf("task a mean response = %g, want 6", got)
	}
	if got := res.PerTaskResponse[1].Mean(); got != 11 {
		t.Errorf("task b mean response = %g, want 11 (queued behind a)", got)
	}
}

// TestJeffayTheoremValidatedBySimulation fuzzes the foundational claim the
// whole paper rests on: a set that passes Theorem 1 with accurate WCETs is
// scheduled by non-preemptive EDF with no deadline miss, for synchronous
// release and for arbitrary phases (the theorem covers arbitrary releases).
func TestJeffayTheoremValidatedBySimulation(t *testing.T) {
	r := rng.New(271828)
	tested := 0
	for trial := 0; trial < 400; trial++ {
		n := 2 + r.Intn(3)
		tasks := make([]task.Task, n)
		periods := []task.Time{6, 8, 10, 12, 16, 20, 24, 30}
		for i := range tasks {
			p := periods[r.Intn(len(periods))]
			w := task.Time(1 + r.Intn(int(p)/2))
			x := w / 2
			if x < 1 {
				x = 1
			}
			if x >= w {
				w = x + 1
			}
			tasks[i] = task.Task{Name: "t", Period: p, WCETAccurate: w, WCETImprecise: x,
				Release: task.Time(r.Intn(7))}
		}
		s, err := task.New(tasks)
		if err != nil {
			continue
		}
		if !feasibility.Schedulable(s, task.Accurate) {
			continue
		}
		res, err := Run(s, &edfPolicy{mode: task.Accurate}, Config{Hyperperiods: 8, StopOnMiss: true})
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, s)
		}
		if res.Misses.Events != 0 {
			t.Fatalf("trial %d: EDF missed a deadline on a Theorem-1-feasible set\n%s", trial, s)
		}
		tested++
	}
	if tested < 100 {
		t.Fatalf("only %d feasible sets exercised", tested)
	}
}

func TestHorizonCoversExactHyperperiods(t *testing.T) {
	s := mkSet(t,
		task.Task{Name: "a", Period: 10, WCETAccurate: 3, WCETImprecise: 1},
		task.Task{Name: "b", Period: 20, WCETAccurate: 5, WCETImprecise: 2},
	)
	for _, hps := range []int{1, 2, 7} {
		res, err := Run(s, &edfPolicy{mode: task.Accurate}, Config{Hyperperiods: hps})
		if err != nil {
			t.Fatal(err)
		}
		if want := int64(hps * 3); res.Jobs != want {
			t.Errorf("hps=%d: %d jobs, want %d", hps, res.Jobs, want)
		}
	}
}

// statePolicyProbe exercises the read-only State accessors policies rely on.
type statePolicyProbe struct {
	sawSporadic bool
	sawNextRel  bool
}

func (p *statePolicyProbe) Name() string { return "state-probe" }
func (p *statePolicyProbe) Reset(*State) {}
func (p *statePolicyProbe) Pick(st *State) (Decision, bool) {
	if st.Sporadic() {
		p.sawSporadic = true
	}
	j, ok := st.EDFPick()
	if !ok {
		return Decision{}, false
	}
	if st.Now() > st.Horizon() {
		panic("now beyond horizon")
	}
	if _, ok := st.NextReleaseTime(j.Key()); ok {
		p.sawNextRel = true
	}
	if st.JobsPerHyperperiod(j.TaskID) <= 0 {
		panic("bad jobs-per-hyperperiod")
	}
	return Decision{Job: j, Mode: task.Imprecise}, true
}
func (p *statePolicyProbe) JobFinished(*State, Decision, task.Time, task.Time) {}

func TestStateAccessors(t *testing.T) {
	s := mkSet(t,
		task.Task{Name: "a", Period: 10, WCETAccurate: 3, WCETImprecise: 1},
		task.Task{Name: "b", Period: 20, WCETAccurate: 5, WCETImprecise: 2},
	)
	probe := &statePolicyProbe{}
	if _, err := Run(s, probe, Config{Hyperperiods: 3}); err != nil {
		t.Fatal(err)
	}
	if probe.sawSporadic {
		t.Error("periodic run reported sporadic")
	}
	if !probe.sawNextRel {
		t.Error("NextReleaseTime never found a future release")
	}
	probe = &statePolicyProbe{}
	dists := make([]task.Dist, s.Len())
	dists[0] = task.Dist{Mean: 2, Sigma: 1, Min: 0, Max: 5}
	if _, err := Run(s, probe, Config{Hyperperiods: 3, Jitter: NewRandomJitter(s, dists, 1)}); err != nil {
		t.Fatal(err)
	}
	if !probe.sawSporadic {
		t.Error("jittered run not reported sporadic")
	}
}
