package sim

import (
	"fmt"
	"math"
	"strings"

	"nprt/internal/rng"
	"nprt/internal/task"
	"nprt/internal/trace"
)

// FaultKind classifies one injected model violation.
type FaultKind uint8

const (
	// FaultNone: the job executes cleanly.
	FaultNone FaultKind = iota
	// FaultOverrun: the job's execution exceeds its declared WCET (w_i or
	// x_i, whichever mode it runs in) by the plan's overrun factor — the
	// model violation Theorem 1 explicitly assumes away.
	FaultOverrun
	// FaultAbort: the job dies mid-execution after consuming part of its
	// sampled execution time; it produces no result and contributes its
	// full fallback error.
	FaultAbort
	// FaultDroppedRelease: the release never happens (a lost activation);
	// the job never enters the pending set. Subsequent releases of the task
	// keep their nominal separation.
	FaultDroppedRelease
)

// String names the kind.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultOverrun:
		return "overrun"
	case FaultAbort:
		return "abort"
	case FaultDroppedRelease:
		return "dropped-release"
	}
	return fmt.Sprintf("kind%d", uint8(k))
}

// Fault is the verdict for one job: what goes wrong, if anything, and by
// how much.
type Fault struct {
	Kind FaultKind
	// Factor is the overrun magnitude for FaultOverrun: the execution runs
	// to ceil(Factor · WCET(mode)) (forced strictly past the budget).
	Factor float64
	// Point is the FaultAbort crash point as a fraction of the job's
	// sampled execution time, in (0, 1].
	Point float64
}

// FaultSampler decides per-job model violations. Implementations must be
// deterministic functions of job identity so every policy in a comparison
// faces the identical fault scenario, and must be safe for concurrent use
// by parallel experiment drivers.
//
// It composes with JitterSampler: jitter perturbs release times, faults
// perturb executions and drop releases; the engine applies both.
type FaultSampler interface {
	// JobFault returns the fault afflicting job j of t. Jobs whose release
	// was dropped never reach execution, so JobFault is never asked about
	// them (and must return Kind FaultNone or FaultDroppedRelease
	// consistently with DropRelease if it is).
	JobFault(t *task.Task, j task.Job) Fault
	// DropRelease reports whether release `index` of task t is lost.
	DropRelease(t *task.Task, index int) bool
}

// FaultRates parameterizes a FaultPlan. Probabilities are per job and
// mutually exclusive (drop is decided first, then abort, then overrun), so
// their sum must be <= 1.
type FaultRates struct {
	// OverrunProb is the per-job probability of a WCET overrun.
	OverrunProb float64
	// OverrunFactor is the overrun magnitude: execution reaches
	// ceil(OverrunFactor · WCET(mode)). Values <= 1 still overrun by one
	// time unit (the engine forces the excess to be strictly positive).
	// Defaults to 1.5 when zero.
	OverrunFactor float64
	// AbortProb is the per-job probability of a mid-execution crash.
	AbortProb float64
	// AbortPoint is the crash point as a fraction of the sampled execution
	// time, in (0, 1]. Defaults to 0.5 when zero.
	AbortPoint float64
	// DropProb is the per-release probability that the activation is lost.
	DropProb float64
}

// IsZero reports whether the rates inject nothing.
func (r FaultRates) IsZero() bool {
	return r.OverrunProb == 0 && r.AbortProb == 0 && r.DropProb == 0
}

// Validate rejects meaningless rates.
func (r FaultRates) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"OverrunProb", r.OverrunProb}, {"AbortProb", r.AbortProb}, {"DropProb", r.DropProb}} {
		if p.v < 0 || p.v > 1 || math.IsNaN(p.v) {
			return fmt.Errorf("sim: %s %g outside [0,1]", p.name, p.v)
		}
	}
	if s := r.OverrunProb + r.AbortProb + r.DropProb; s > 1 {
		return fmt.Errorf("sim: fault probabilities sum to %g > 1", s)
	}
	if r.OverrunFactor < 0 || r.AbortPoint < 0 || r.AbortPoint > 1 {
		return fmt.Errorf("sim: OverrunFactor %g / AbortPoint %g out of range",
			r.OverrunFactor, r.AbortPoint)
	}
	return nil
}

// FaultPlan is the seeded deterministic FaultSampler: the fault verdict for
// job (task, index) is a pure function of (seed, task ID, index), never of
// dispatch order or policy. Running two policies against the same plan
// therefore subjects them to the identical fault scenario — the
// apples-to-apples property the fault-sweep experiment relies on — and the
// plan is trivially safe for concurrent use.
type FaultPlan struct {
	seed  uint64
	rates FaultRates
}

// NewFaultPlan builds a plan. Zero-valued rate fields get their documented
// defaults; invalid rates panic (programmer error — validate user input
// with FaultRates.Validate first).
func NewFaultPlan(seed uint64, rates FaultRates) *FaultPlan {
	if err := rates.Validate(); err != nil {
		panic(err)
	}
	if rates.OverrunFactor == 0 {
		rates.OverrunFactor = 1.5
	}
	if rates.AbortPoint == 0 {
		rates.AbortPoint = 0.5
	}
	return &FaultPlan{seed: seed ^ 0x243f6a8885a308d3, rates: rates}
}

// Rates returns the plan's (defaulted) rates.
func (fp *FaultPlan) Rates() FaultRates { return fp.rates }

// draw returns the uniform [0,1) sample that decides job (taskID, index).
func (fp *FaultPlan) draw(taskID, index int) float64 {
	// One SplitMix64-seeded stream per job identity: cheap, stateless and
	// independent of every other sampler in the run.
	key := fp.seed ^ uint64(taskID)*0x9e3779b97f4a7c15 ^ uint64(index)*0xd1b54a32d192ed03
	return rng.New(key).Float64()
}

// verdict maps the job's uniform draw onto the mutually exclusive kinds.
func (fp *FaultPlan) verdict(taskID, index int) FaultKind {
	u := fp.draw(taskID, index)
	switch {
	case u < fp.rates.DropProb:
		return FaultDroppedRelease
	case u < fp.rates.DropProb+fp.rates.AbortProb:
		return FaultAbort
	case u < fp.rates.DropProb+fp.rates.AbortProb+fp.rates.OverrunProb:
		return FaultOverrun
	}
	return FaultNone
}

// JobFault implements FaultSampler.
func (fp *FaultPlan) JobFault(t *task.Task, j task.Job) Fault {
	switch fp.verdict(t.ID, j.Index) {
	case FaultOverrun:
		return Fault{Kind: FaultOverrun, Factor: fp.rates.OverrunFactor}
	case FaultAbort:
		return Fault{Kind: FaultAbort, Point: fp.rates.AbortPoint}
	}
	return Fault{}
}

// DropRelease implements FaultSampler.
func (fp *FaultPlan) DropRelease(t *task.Task, index int) bool {
	return fp.verdict(t.ID, index) == FaultDroppedRelease
}

// Containment selects the engine's response to budget violations. It is
// enforced at dispatch level, uniformly across policies, so the fault sweep
// compares responses under identical scheduling decisions.
type Containment uint8

const (
	// RunToCompletion is the baseline: an overrunning job keeps the
	// processor until it finishes, and every queued job behind it absorbs
	// the delay. This is the miss-cascade scenario the containment
	// policies exist to measure against.
	RunToCompletion Containment = iota
	// AbortAtBudget arms a watchdog: an overrunning job is killed exactly
	// at its declared WCET. The job itself fails (full fallback error, a
	// deadline miss) but the processor is freed on schedule, so clean jobs
	// keep their guarantees.
	AbortAtBudget
	// DowngradeOnOverrun lets the offending job finish but forces every
	// subsequent job of that task to its deepest imprecise level until one
	// completes within its declared budget again — trading that task's
	// accuracy for system-wide slack, in the adaptive spirit of the
	// paper's imprecise-mode fallback.
	DowngradeOnOverrun
)

// String names the containment policy (JSON/CSV artifact key).
func (c Containment) String() string {
	switch c {
	case RunToCompletion:
		return "run-to-completion"
	case AbortAtBudget:
		return "abort-at-budget"
	case DowngradeOnOverrun:
		return "downgrade-on-overrun"
	}
	return fmt.Sprintf("containment%d", uint8(c))
}

// Containments lists every containment policy in presentation order.
func Containments() []Containment {
	return []Containment{RunToCompletion, AbortAtBudget, DowngradeOnOverrun}
}

// TaskFaultStats is the per-task fault accounting of one run.
type TaskFaultStats struct {
	Overruns        int64 `json:"overruns"`       // overrun faults injected
	WatchdogKills   int64 `json:"watchdog_kills"` // overruns terminated at budget
	Aborts          int64 `json:"aborts"`         // mid-execution crashes
	DroppedReleases int64 `json:"dropped_releases"`
	Downgrades      int64 `json:"downgrades"`      // jobs forced imprecise by containment
	FaultedMisses   int64 `json:"faulted_misses"`  // misses of jobs that were themselves faulted
	CascadedMisses  int64 `json:"cascaded_misses"` // misses of clean jobs (collateral damage)
}

// FaultStats aggregates a run's fault accounting: the totals plus the
// per-task breakdown. Present on Result only when injection was enabled.
type FaultStats struct {
	Total   TaskFaultStats   `json:"total"`
	PerTask []TaskFaultStats `json:"per_task"`
	// OverrunTime is the summed execution time past declared budgets that
	// actually reached the processor (zero under AbortAtBudget).
	OverrunTime task.Time `json:"overrun_time"`
}

func newFaultStats(n int) *FaultStats {
	return &FaultStats{PerTask: make([]TaskFaultStats, n)}
}

// count applies fn to the task's row and the totals row.
func (fs *FaultStats) count(taskID int, fn func(*TaskFaultStats)) {
	fn(&fs.PerTask[taskID])
	fn(&fs.Total)
}

// String renders a one-line summary.
func (fs *FaultStats) String() string {
	t := fs.Total
	var b strings.Builder
	fmt.Fprintf(&b, "faults: overruns=%d kills=%d aborts=%d drops=%d downgrades=%d",
		t.Overruns, t.WatchdogKills, t.Aborts, t.DroppedReleases, t.Downgrades)
	fmt.Fprintf(&b, " faulted-miss=%d cascaded-miss=%d overrun-time=%d",
		t.FaultedMisses, t.CascadedMisses, fs.OverrunTime)
	return b.String()
}

// DropAware is an optional Policy extension. The engine notifies the policy
// whenever a release it may be counting on is dropped by fault injection,
// before the job would have entered the pending set. Policies that replay a
// fixed offline order (the OA family) implement it to skip the lost job
// instead of deadlocking on a release that never comes; purely reactive
// policies (EDF variants) can ignore it.
type DropAware interface {
	JobDropped(st *State, j task.Job)
}

// failureTag maps an execution outcome onto the trace tag.
func failureTag(kind FaultKind, killed bool) trace.FaultTag {
	switch {
	case killed:
		return trace.FaultKilled
	case kind == FaultAbort:
		return trace.FaultDied
	case kind == FaultOverrun:
		return trace.FaultOverrun
	}
	return trace.FaultNone
}
