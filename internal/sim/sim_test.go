package sim

import (
	"strings"
	"testing"

	"nprt/internal/task"
	"nprt/internal/trace"
)

// edfPolicy is a minimal EDF policy local to this package's tests (the real
// baselines live in internal/policy; keeping a local copy avoids an import
// cycle in tests and pins the engine contract).
type edfPolicy struct{ mode task.Mode }

func (p *edfPolicy) Name() string    { return "test-edf" }
func (p *edfPolicy) Reset(st *State) {}
func (p *edfPolicy) Pick(st *State) (Decision, bool) {
	j, ok := st.EDFPick()
	if !ok {
		return Decision{}, false
	}
	return Decision{Job: j, Mode: p.mode}, true
}
func (p *edfPolicy) JobFinished(*State, Decision, task.Time, task.Time) {}

func mkSet(t *testing.T, tasks ...task.Task) *task.Set {
	t.Helper()
	s, err := task.New(tasks)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func simpleSet(t *testing.T) *task.Set {
	return mkSet(t,
		task.Task{Name: "a", Period: 10, WCETAccurate: 3, WCETImprecise: 1, Error: task.Dist{Mean: 2}},
		task.Task{Name: "b", Period: 20, WCETAccurate: 6, WCETImprecise: 2, Error: task.Dist{Mean: 5}},
	)
}

func TestRunEDFWorstCaseSchedulableSet(t *testing.T) {
	s := simpleSet(t)
	res, err := Run(s, &edfPolicy{mode: task.Accurate}, Config{Hyperperiods: 3, TraceLimit: -1})
	if err != nil {
		t.Fatal(err)
	}
	// 3 hyper-periods of 20: task a has 2 jobs/P, b has 1 → 9 jobs.
	if res.Jobs != 9 {
		t.Errorf("Jobs = %d, want 9", res.Jobs)
	}
	if res.Misses.Events != 0 {
		t.Errorf("unexpected misses: %v", res.Misses)
	}
	if res.Accurate != 9 || res.Imprecise != 0 {
		t.Errorf("mode counts = %d/%d", res.Accurate, res.Imprecise)
	}
	if res.MeanError() != 0 {
		t.Errorf("accurate-only run has error %g", res.MeanError())
	}
	vs := trace.Validate(res.Trace, trace.Options{RequireDeadlines: true, WCETBounds: true, Set: s})
	if len(vs) != 0 {
		t.Errorf("trace violations: %v", vs)
	}
	if res.Busy != 9*3 { // 6 jobs of a (w=3) + 3 jobs of b (w=6) = 18+18 = 36... recompute below
		// task a: 2 jobs/P * 3 P = 6 jobs * 3 = 18; task b: 3 jobs * 6 = 18.
		if res.Busy != 36 {
			t.Errorf("Busy = %d, want 36", res.Busy)
		}
	}
}

func TestRunImpreciseCollectsErrors(t *testing.T) {
	s := simpleSet(t)
	res, err := Run(s, &edfPolicy{mode: task.Imprecise}, Config{Hyperperiods: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Imprecise != 3 || res.Accurate != 0 {
		t.Fatalf("mode counts = %d/%d", res.Accurate, res.Imprecise)
	}
	// WorstCaseSampler charges the mean error: (2+2+5)/3 = 3.
	if got := res.MeanError(); got != 3 {
		t.Errorf("MeanError = %g, want 3", got)
	}
	if res.PerTaskError[0].Mean() != 2 || res.PerTaskError[1].Mean() != 5 {
		t.Errorf("per-task errors: %v / %v", res.PerTaskError[0].Mean(), res.PerTaskError[1].Mean())
	}
}

func TestOverloadedAccurateMissesDeadlines(t *testing.T) {
	// U_acc = 0.9 + 0.45 = 1.35 > 1: EDF-Accurate must miss deadlines.
	s := mkSet(t,
		task.Task{Name: "a", Period: 10, WCETAccurate: 9, WCETImprecise: 2},
		task.Task{Name: "b", Period: 20, WCETAccurate: 9, WCETImprecise: 3},
	)
	res, err := Run(s, &edfPolicy{mode: task.Accurate}, Config{Hyperperiods: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses.Events == 0 {
		t.Error("overloaded set produced no deadline misses")
	}
	// Same set in imprecise mode (U = 0.35) is fine.
	res, err = Run(s, &edfPolicy{mode: task.Imprecise}, Config{Hyperperiods: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses.Events != 0 {
		t.Errorf("imprecise run missed %d deadlines", res.Misses.Events)
	}
}

func TestStopOnMiss(t *testing.T) {
	s := mkSet(t,
		task.Task{Name: "a", Period: 10, WCETAccurate: 9, WCETImprecise: 2},
		task.Task{Name: "b", Period: 10, WCETAccurate: 9, WCETImprecise: 2},
	)
	res, err := Run(s, &edfPolicy{mode: task.Accurate}, Config{Hyperperiods: 100, StopOnMiss: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted {
		t.Error("StopOnMiss did not abort")
	}
	if res.Misses.Events != 1 {
		t.Errorf("expected exactly one recorded miss, got %d", res.Misses.Events)
	}
}

func TestPhaseOffsetRespected(t *testing.T) {
	s := mkSet(t,
		task.Task{Name: "a", Period: 10, Release: 4, WCETAccurate: 3, WCETImprecise: 1},
	)
	res, err := Run(s, &edfPolicy{mode: task.Accurate}, Config{Hyperperiods: 2, TraceLimit: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Len() == 0 || res.Trace.Entries[0].Start != 4 {
		t.Errorf("first start = %v, want 4", res.Trace.Entries)
	}
	if vs := trace.Validate(res.Trace, trace.Options{RequireDeadlines: true}); len(vs) != 0 {
		t.Errorf("violations: %v", vs)
	}
}

func TestRandomSamplerBoundsAndDeterminism(t *testing.T) {
	s := mkSet(t,
		task.Task{
			Name: "a", Period: 100, WCETAccurate: 60, WCETImprecise: 20,
			ExecAccurate:  task.Dist{Mean: 30, Sigma: 5, Min: 6, Max: 60},
			ExecImprecise: task.Dist{Mean: 10, Sigma: 2, Min: 2, Max: 20},
			Error:         task.Dist{Mean: 3, Sigma: 1},
		},
	)
	sa := NewRandomSampler(s, 99)
	sb := NewRandomSampler(s, 99)
	tk := s.Task(0)
	for i := 0; i < 1000; i++ {
		j := s.Job(0, i)
		va := sa.ExecTime(tk, j, task.Accurate)
		vb := sb.ExecTime(tk, j, task.Accurate)
		if va != vb {
			t.Fatalf("sampler not deterministic at %d", i)
		}
		if va < 1 || va > 60 {
			t.Fatalf("accurate exec time out of bounds: %d", va)
		}
		vi := sa.ExecTime(tk, j, task.Imprecise)
		if vi < 1 || vi > 20 {
			t.Fatalf("imprecise exec time out of bounds: %d", vi)
		}
		sb.ExecTime(tk, j, task.Imprecise)
		if e := sa.Error(tk, j, task.Imprecise); e < 0 {
			t.Fatalf("negative error: %g", e)
		}
		sb.Error(tk, j, task.Imprecise)
	}
}

func TestRunWithRandomSamplerValidTrace(t *testing.T) {
	s := mkSet(t,
		task.Task{
			Name: "a", Period: 20, WCETAccurate: 8, WCETImprecise: 3,
			ExecAccurate:  task.Dist{Mean: 4, Sigma: 1, Min: 1, Max: 8},
			ExecImprecise: task.Dist{Mean: 2, Sigma: 0.5, Min: 1, Max: 3},
			Error:         task.Dist{Mean: 1, Sigma: 0.3},
		},
		task.Task{
			Name: "b", Period: 40, WCETAccurate: 12, WCETImprecise: 5,
			ExecAccurate:  task.Dist{Mean: 6, Sigma: 2, Min: 1, Max: 12},
			ExecImprecise: task.Dist{Mean: 3, Sigma: 1, Min: 1, Max: 5},
			Error:         task.Dist{Mean: 2, Sigma: 0.5},
		},
	)
	res, err := Run(s, &edfPolicy{mode: task.Imprecise},
		Config{Hyperperiods: 20, Sampler: NewRandomSampler(s, 7), TraceLimit: -1})
	if err != nil {
		t.Fatal(err)
	}
	vs := trace.Validate(res.Trace, trace.Options{RequireDeadlines: true, WCETBounds: true, Set: s})
	if len(vs) != 0 {
		t.Errorf("violations: %v", vs[:min(3, len(vs))])
	}
	if res.MeanError() <= 0 {
		t.Error("expected positive mean error from imprecise run")
	}
}

func TestTraceLimit(t *testing.T) {
	s := simpleSet(t)
	res, err := Run(s, &edfPolicy{mode: task.Accurate}, Config{Hyperperiods: 10, TraceLimit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Len() != 5 {
		t.Errorf("trace len = %d, want 5", res.Trace.Len())
	}
	res, err = Run(s, &edfPolicy{mode: task.Accurate}, Config{Hyperperiods: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Error("TraceLimit=0 should not record a trace")
	}
}

// waitingPolicy commits to a specific future job to exercise the engine's
// idle-until-release path (what the offline+OA policies rely on).
type waitingPolicy struct {
	picked bool
}

func (p *waitingPolicy) Name() string    { return "waiting" }
func (p *waitingPolicy) Reset(st *State) { p.picked = false }
func (p *waitingPolicy) Pick(st *State) (Decision, bool) {
	// Always run task 1's next job first even if task 0 is pending.
	for _, j := range st.Pending() {
		if j.TaskID == 1 {
			return Decision{Job: j, Mode: task.Accurate}, true
		}
	}
	if !p.picked {
		p.picked = true
		return Decision{Job: st.Set().Job(1, 0), Mode: task.Accurate}, true
	}
	j, ok := st.EDFPick()
	if !ok {
		return Decision{}, false
	}
	return Decision{Job: j, Mode: task.Accurate}, true
}
func (p *waitingPolicy) JobFinished(*State, Decision, task.Time, task.Time) {}

func TestPolicyMayCommitToFutureJob(t *testing.T) {
	s := mkSet(t,
		task.Task{Name: "a", Period: 10, WCETAccurate: 2, WCETImprecise: 1},
		task.Task{Name: "b", Period: 20, Release: 5, WCETAccurate: 4, WCETImprecise: 2},
	)
	res, err := Run(s, &waitingPolicy{}, Config{Hyperperiods: 1, TraceLimit: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Entries[0].Job.TaskID != 1 || res.Trace.Entries[0].Start != 5 {
		t.Errorf("future-job commit not honoured: %+v", res.Trace.Entries[0])
	}
	if vs := trace.Validate(res.Trace, trace.Options{}); len(vs) != 0 {
		t.Errorf("violations: %v", vs)
	}
}

// badPolicy picks a job that does not exist to exercise engine validation.
type badPolicy struct{}

func (badPolicy) Name() string { return "bad" }
func (badPolicy) Reset(*State) {}
func (badPolicy) Pick(st *State) (Decision, bool) {
	return Decision{Job: task.Job{TaskID: 0, Index: 999, Release: 1, Deadline: 2}}, true
}
func (badPolicy) JobFinished(*State, Decision, task.Time, task.Time) {}

func TestEngineRejectsUnknownJob(t *testing.T) {
	s := simpleSet(t)
	if _, err := Run(s, badPolicy{}, Config{Hyperperiods: 1}); err == nil {
		t.Error("engine accepted an unknown job")
	}
}

// lazyPolicy never picks anything; with pending jobs and no future releases
// the engine must error rather than spin.
type lazyPolicy struct{}

func (lazyPolicy) Name() string                                       { return "lazy" }
func (lazyPolicy) Reset(*State)                                       {}
func (lazyPolicy) Pick(*State) (Decision, bool)                       { return Decision{}, false }
func (lazyPolicy) JobFinished(*State, Decision, task.Time, task.Time) {}

func TestEngineDetectsStarvation(t *testing.T) {
	s := simpleSet(t)
	if _, err := Run(s, lazyPolicy{}, Config{Hyperperiods: 1}); err == nil ||
		!strings.Contains(err.Error(), "idles") {
		t.Errorf("starvation not detected: %v", err)
	}
}

func TestResultString(t *testing.T) {
	s := simpleSet(t)
	res, err := Run(s, &edfPolicy{mode: task.Imprecise}, Config{Hyperperiods: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out := res.String(); !strings.Contains(out, "test-edf") || !strings.Contains(out, "jobs=3") {
		t.Errorf("String = %q", out)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
