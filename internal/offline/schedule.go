// Package offline implements §IV of the paper: the collaborative methods
// for periodic tasks with independent errors. Each method pairs an offline
// schedule of one hyper-period with the constant-time online adjustment:
//
//   - ILP+OA (§IV-A): optimal mode assignment by integer programming (the
//     exact Pareto dynamic program solves the same order-fixed model and is
//     cross-checked against the branch-and-bound MILP in tests);
//   - ILP+Post+OA (§IV-B): three monotone offline rewrites that enlarge the
//     online upgrade window;
//   - Flipped EDF (§IV-C): as-late-as-possible reverse-time EDF with every
//     job imprecise.
//
// The offline schedulers require all first releases at 0 (the Theorem-1
// setting the paper evaluates); the schedule then repeats every
// hyper-period.
package offline

import (
	"errors"
	"fmt"

	"nprt/internal/task"
)

// ScheduledJob is one row of an offline schedule: job, planned mode y, and
// offline start/finish times computed with WCETs (f̂ in the paper).
type ScheduledJob struct {
	Job    task.Job
	Mode   task.Mode
	Start  task.Time // s_{i,j}
	Finish task.Time // f̂_{i,j} = s + w, or s + x when imprecise
}

// Schedule is an offline plan for one hyper-period, in execution order.
type Schedule struct {
	Set  *task.Set
	Jobs []ScheduledJob
}

// ErrNotZeroRelease is returned when an offline scheduler is given a set
// with non-zero first releases.
var ErrNotZeroRelease = errors.New("offline: offline scheduling requires all first releases at 0")

// ErrInfeasible is returned when no feasible offline schedule exists under
// the requested modes.
var ErrInfeasible = errors.New("offline: no feasible schedule")

// checkZeroRelease guards the offline builders.
func checkZeroRelease(s *task.Set) error {
	if s.MaxRelease() != 0 {
		return ErrNotZeroRelease
	}
	return nil
}

// TotalMeanError returns Σ e_i over planned-imprecise jobs: the objective
// the offline optimizers minimize (an upper-bound guarantee on error).
func (sc *Schedule) TotalMeanError() float64 {
	e := 0.0
	for _, sj := range sc.Jobs {
		if sj.Mode == task.Imprecise {
			e += sc.Set.Task(sj.Job.TaskID).MeanError()
		}
	}
	return e
}

// ModeCounts returns planned mode counts.
func (sc *Schedule) ModeCounts() (accurate, imprecise int) {
	for _, sj := range sc.Jobs {
		if sj.Mode == task.Accurate {
			accurate++
		} else {
			imprecise++
		}
	}
	return accurate, imprecise
}

// Validate checks the offline-schedule invariants: complete coverage of the
// hyper-period's jobs, WCET-consistent durations, release/deadline windows,
// and non-overlap in order.
func (sc *Schedule) Validate() error {
	s := sc.Set
	want := s.JobsPerHyperperiod()
	if len(sc.Jobs) != want {
		return fmt.Errorf("offline: schedule has %d jobs, hyper-period has %d", len(sc.Jobs), want)
	}
	seen := make(map[task.JobKey]bool, want)
	var prevFinish task.Time
	for k, sj := range sc.Jobs {
		tk := s.Task(sj.Job.TaskID)
		if seen[sj.Job.Key()] {
			return fmt.Errorf("offline: job %v scheduled twice", sj.Job)
		}
		seen[sj.Job.Key()] = true
		if got, wantDur := sj.Finish-sj.Start, tk.WCET(sj.Mode); got != wantDur {
			return fmt.Errorf("offline: job %v duration %d != %s WCET %d", sj.Job, got, sj.Mode, wantDur)
		}
		if sj.Start < sj.Job.Release {
			return fmt.Errorf("offline: job %v starts %d before release %d", sj.Job, sj.Start, sj.Job.Release)
		}
		if sj.Finish > sj.Job.Deadline {
			return fmt.Errorf("offline: job %v finishes %d after deadline %d", sj.Job, sj.Finish, sj.Job.Deadline)
		}
		if k > 0 && sj.Start < prevFinish {
			return fmt.Errorf("offline: job %v overlaps previous finish %d", sj.Job, prevFinish)
		}
		prevFinish = sj.Finish
	}
	return nil
}

// Clone deep-copies the schedule (the post-processor works on a copy).
func (sc *Schedule) Clone() *Schedule {
	jobs := make([]ScheduledJob, len(sc.Jobs))
	copy(jobs, sc.Jobs)
	return &Schedule{Set: sc.Set, Jobs: jobs}
}

// String renders the plan compactly.
func (sc *Schedule) String() string {
	out := fmt.Sprintf("offline schedule: %d jobs, planned error %.4g\n", len(sc.Jobs), sc.TotalMeanError())
	for _, sj := range sc.Jobs {
		mode := "A"
		if sj.Mode == task.Imprecise {
			mode = "I"
		}
		out += fmt.Sprintf("  %v %s [%d,%d)\n", sj.Job, mode, sj.Start, sj.Finish)
	}
	return out
}

// respace recomputes ASAP starts for the current order and modes; it
// reports ErrInfeasible when some job misses its deadline. Used after mode
// reassignment and order swaps.
func (sc *Schedule) respace() error {
	var t task.Time
	for k := range sc.Jobs {
		sj := &sc.Jobs[k]
		start := sj.Job.Release
		if t > start {
			start = t
		}
		w := sc.Set.Task(sj.Job.TaskID).WCET(sj.Mode)
		sj.Start = start
		sj.Finish = start + w
		if sj.Finish > sj.Job.Deadline {
			return ErrInfeasible
		}
		t = sj.Finish
	}
	return nil
}
