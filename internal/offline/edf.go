package offline

import (
	"fmt"
	"sort"

	"nprt/internal/task"
)

// EDFOrder simulates non-preemptive EDF over one hyper-period with every
// job's WCET in the given mode and returns the dispatch order. This is the
// canonical order the order-fixed optimizers (Pareto DP, mode ILP) work on;
// the paper fixes the execution order to the ILP output in the same way.
// By Jeffay et al., when Theorem 1 holds for the mode's WCETs this order is
// deadline-feasible.
func EDFOrder(s *task.Set, m task.Mode) ([]task.Job, error) {
	if err := checkZeroRelease(s); err != nil {
		return nil, err
	}
	jobs := s.JobsWithin(0, s.Hyperperiod())
	order := make([]task.Job, 0, len(jobs))

	// Released jobs, pending execution.
	var pending []task.Job
	next := 0 // next unreleased job in release-sorted jobs
	var t task.Time
	for len(order) < len(jobs) {
		for next < len(jobs) && jobs[next].Release <= t {
			pending = append(pending, jobs[next])
			next++
		}
		if len(pending) == 0 {
			t = jobs[next].Release
			continue
		}
		best := 0
		for i := 1; i < len(pending); i++ {
			if jobLess(pending[i], pending[best]) {
				best = i
			}
		}
		j := pending[best]
		pending[best] = pending[len(pending)-1]
		pending = pending[:len(pending)-1]
		order = append(order, j)
		start := j.Release
		if t > start {
			start = t
		}
		t = start + s.Task(j.TaskID).WCET(m)
	}
	return order, nil
}

// jobLess is the deterministic EDF tie-break: deadline, then release, then
// task id, then index.
func jobLess(a, b task.Job) bool {
	if a.Deadline != b.Deadline {
		return a.Deadline < b.Deadline
	}
	if a.Release != b.Release {
		return a.Release < b.Release
	}
	if a.TaskID != b.TaskID {
		return a.TaskID < b.TaskID
	}
	return a.Index < b.Index
}

// ScheduleWithModes lays out the given job order with the given per-job
// modes (parallel to order) at ASAP starts and validates feasibility.
func ScheduleWithModes(s *task.Set, order []task.Job, modes []task.Mode) (*Schedule, error) {
	if len(order) != len(modes) {
		return nil, fmt.Errorf("offline: %d jobs but %d modes", len(order), len(modes))
	}
	sc := &Schedule{Set: s, Jobs: make([]ScheduledJob, len(order))}
	for k, j := range order {
		sc.Jobs[k] = ScheduledJob{Job: j, Mode: modes[k]}
	}
	if err := sc.respace(); err != nil {
		return nil, err
	}
	return sc, nil
}

// FlippedEDF builds the §IV-C offline schedule: every job imprecise,
// scheduled as late as possible by EDF on the reversed time axis (release
// and deadline exchange roles). Among unscheduled jobs whose deadline has
// been "reached" by the backward frontier it always places the one with the
// latest release time, ending at the frontier.
func FlippedEDF(s *task.Set) (*Schedule, error) {
	if err := checkZeroRelease(s); err != nil {
		return nil, err
	}
	jobs := s.JobsWithin(0, s.Hyperperiod())
	type placed struct {
		job        task.Job
		start, end task.Time
	}
	out := make([]placed, 0, len(jobs))

	// Sort by deadline descending so "advance the backward frontier" is a
	// linear scan.
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].Deadline > jobs[b].Deadline })

	frontier := s.Hyperperiod()
	var eligible []task.Job
	next := 0
	for len(out) < cap(out) {
		for next < len(jobs) && jobs[next].Deadline >= frontier {
			eligible = append(eligible, jobs[next])
			next++
		}
		if len(eligible) == 0 {
			if next >= len(jobs) {
				break
			}
			frontier = jobs[next].Deadline
			continue
		}
		// Latest release first; tie-break mirrors jobLess in reverse.
		best := 0
		for i := 1; i < len(eligible); i++ {
			if flippedLess(eligible[i], eligible[best]) {
				best = i
			}
		}
		j := eligible[best]
		eligible[best] = eligible[len(eligible)-1]
		eligible = eligible[:len(eligible)-1]

		end := frontier
		if j.Deadline < end {
			end = j.Deadline
		}
		start := end - s.Task(j.TaskID).WCET(task.Deepest)
		if start < j.Release {
			return nil, fmt.Errorf("%w: flipped EDF cannot place %v (start %d < release %d)",
				ErrInfeasible, j, start, j.Release)
		}
		out = append(out, placed{job: j, start: start, end: end})
		frontier = start
	}

	if len(out) != len(jobs) {
		return nil, fmt.Errorf("%w: flipped EDF placed %d of %d jobs", ErrInfeasible, len(out), len(jobs))
	}

	// out is in reverse execution order.
	sc := &Schedule{Set: s, Jobs: make([]ScheduledJob, len(out))}
	for i, p := range out {
		sc.Jobs[len(out)-1-i] = ScheduledJob{
			Job:    p.job,
			Mode:   s.Task(p.job.TaskID).ClampMode(task.Deepest),
			Start:  p.start,
			Finish: p.end,
		}
	}
	return sc, nil
}

// flippedLess orders eligible jobs in the reversed-time EDF: the reversed
// deadline of a job is P − r, so the earliest reversed deadline is the
// largest release time.
func flippedLess(a, b task.Job) bool {
	if a.Release != b.Release {
		return a.Release > b.Release
	}
	if a.Deadline != b.Deadline {
		return a.Deadline > b.Deadline
	}
	if a.TaskID != b.TaskID {
		return a.TaskID > b.TaskID
	}
	return a.Index > b.Index
}
