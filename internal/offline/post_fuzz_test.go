package offline

import (
	"testing"

	"nprt/internal/esr"
	"nprt/internal/rng"
	"nprt/internal/sim"
	"nprt/internal/task"
)

// randomFeasibleSchedule draws a random imprecise-feasible set and builds
// its ILP schedule; skips draws that are infeasible.
func randomFeasibleSchedule(r *rng.Stream) (*task.Set, *Schedule) {
	s := randomSmallSet(r)
	if s == nil || !schedulableImprecise(s) {
		return nil, nil
	}
	sc, err := BuildILPSchedule(s)
	if err != nil {
		return nil, nil
	}
	return s, sc
}

// TestPostProcessFuzz checks the §IV-B rewrites on hundreds of random
// schedules: the output is always a valid schedule, the planned error is
// untouched (rewrites never change modes), Σf̂ never decreases, and the
// pass counter stays under the cap (fixpoint reached, not bailed out).
func TestPostProcessFuzz(t *testing.T) {
	r := rng.New(5150)
	tested := 0
	for trial := 0; trial < 600; trial++ {
		s, sc := randomFeasibleSchedule(r)
		if sc == nil {
			continue
		}
		post, stats := PostProcess(sc, PostProcessOptions{})
		if err := post.Validate(); err != nil {
			t.Fatalf("trial %d: invalid post-processed schedule: %v\n%s\nbefore:\n%s\nafter:\n%s",
				trial, err, s, sc, post)
		}
		if post.TotalMeanError() != sc.TotalMeanError() {
			t.Fatalf("trial %d: planned error changed: %g → %g",
				trial, sc.TotalMeanError(), post.TotalMeanError())
		}
		// Monotonicity holds for the postponement rewrite alone (the swap
		// rules may repack a pair slightly earlier inside its envelope, and
		// that is fine — they trade Σf̂ for slack-reclamation position).
		postponeOnly, _ := PostProcess(sc, PostProcessOptions{
			DisableSameModeSwap: true, DisableImpreciseLater: true,
		})
		var before, after task.Time
		for k := range sc.Jobs {
			before += sc.Jobs[k].Finish
		}
		for k := range postponeOnly.Jobs {
			after += postponeOnly.Jobs[k].Finish
		}
		if after < before {
			t.Fatalf("trial %d: postpone-only Σf̂ decreased %d → %d", trial, before, after)
		}
		if stats.Passes >= 16+len(post.Jobs) {
			t.Fatalf("trial %d: post-processing hit its pass cap (no fixpoint)", trial)
		}
		// Idempotence: a second application must be a no-op.
		again, stats2 := PostProcess(post, PostProcessOptions{})
		for k := range post.Jobs {
			if again.Jobs[k] != post.Jobs[k] {
				t.Fatalf("trial %d: post-processing not idempotent at job %d (%+v → %+v)",
					trial, k, post.Jobs[k], again.Jobs[k])
			}
		}
		if stats2.Postponed+stats2.SameModeSwaps+stats2.ImpreciseLaterSw != 0 {
			t.Fatalf("trial %d: second pass still rewrote: %+v", trial, stats2)
		}
		tested++
	}
	if tested < 150 {
		t.Fatalf("only %d schedules exercised", tested)
	}
}

// TestOASafetyFuzz drives the three OA policies over random feasible sets
// with randomized execution times and asserts zero deadline misses — the
// paper's central guarantee — plus exact job coverage.
func TestOASafetyFuzz(t *testing.T) {
	r := rng.New(60065)
	tested := 0
	for trial := 0; trial < 200; trial++ {
		s := randomSmallSet(r)
		if s == nil || !schedulableImprecise(s) {
			continue
		}
		builders := []func(*task.Set) (*OAPolicy, error){NewILPOA, NewILPPostOA, NewFlippedEDF}
		for bi, build := range builders {
			p, err := build(s)
			if err != nil {
				t.Fatalf("trial %d builder %d: %v\n%s", trial, bi, err, s)
			}
			res, err := sim.Run(s, p, sim.Config{
				Hyperperiods: 20,
				Sampler:      sim.NewRandomSampler(s, uint64(trial)),
			})
			if err != nil {
				t.Fatalf("trial %d %s: %v\n%s", trial, p.Name(), err, s)
			}
			if res.Misses.Events != 0 {
				t.Fatalf("trial %d %s: %d deadline misses\n%s", trial, p.Name(), res.Misses.Events, s)
			}
			if res.Jobs != int64(20*s.JobsPerHyperperiod()) {
				t.Fatalf("trial %d %s: %d jobs, want %d", trial, p.Name(), res.Jobs, 20*s.JobsPerHyperperiod())
			}
		}
		tested++
	}
	if tested < 50 {
		t.Fatalf("only %d sets exercised", tested)
	}
}

// TestESRSafetyFuzz does the same for the online EDF+ESR method via the
// public simulator path (the guarantee the paper proves for §III).
func TestESRSafetyFuzz(t *testing.T) {
	r := rng.New(777)
	tested := 0
	for trial := 0; trial < 300; trial++ {
		s := randomSmallSet(r)
		if s == nil || !schedulableImprecise(s) {
			continue
		}
		p := esr.New()
		res, err := sim.Run(s, p, sim.Config{
			Hyperperiods: 30,
			Sampler:      sim.NewRandomSampler(s, uint64(trial)),
		})
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, s)
		}
		if res.Misses.Events != 0 {
			t.Fatalf("trial %d: EDF+ESR missed %d deadlines\n%s", trial, res.Misses.Events, s)
		}
		tested++
	}
	if tested < 80 {
		t.Fatalf("only %d sets exercised", tested)
	}
}
