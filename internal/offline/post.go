package offline

import (
	"nprt/internal/task"
)

// PostProcessStats reports how many times each §IV-B rewrite fired.
type PostProcessStats struct {
	Postponed        int // rule 1: start times pushed toward the deadline
	SameModeSwaps    int // rule 2: same-accuracy pairs reordered by release
	ImpreciseLaterSw int // rule 3: imprecise jobs moved after accurate ones
	Passes           int
}

// PostProcessOptions enables individual rewrites (all on = the paper's
// post-processing; switches exist for the ablation study).
type PostProcessOptions struct {
	DisablePostpone       bool
	DisableSameModeSwap   bool
	DisableImpreciseLater bool
	MaxPasses             int // 0 = default
}

// PostProcess applies the three offline rewrites of §IV-B to a copy of the
// schedule until a fixpoint (or the pass cap, a safety net the monotone
// rewrites never hit in practice):
//
//  1. postpone a job's offline start into idle time that follows it, which
//     raises f̂ and therefore the online upgrade chance (the runtime never
//     waits for the offline start, so this is free);
//  2. swap adjacent same-accuracy jobs so the earlier-released job runs
//     first (it has more chance to reclaim slack from prior completions);
//  3. swap an (imprecise, accurate) adjacent pair so the imprecise job runs
//     later, where it can reclaim more slack — subject to release/deadline
//     constraints.
//
// The returned schedule is always valid; the input is not modified.
func PostProcess(sc *Schedule, opt PostProcessOptions) (*Schedule, PostProcessStats) {
	out := sc.Clone()
	var st PostProcessStats
	maxPasses := opt.MaxPasses
	if maxPasses <= 0 {
		maxPasses = 16 + len(out.Jobs)
	}
	for pass := 0; pass < maxPasses; pass++ {
		changed := false
		if !opt.DisableSameModeSwap || !opt.DisableImpreciseLater {
			if swapsPass(out, opt, &st) {
				changed = true
			}
		}
		if !opt.DisablePostpone {
			if postponePass(out, &st) {
				changed = true
			}
		}
		st.Passes++
		if !changed {
			break
		}
	}
	return out, st
}

// postponePass pushes every start as late as possible (right-to-left),
// bounded by the job's deadline and the next job's (possibly postponed)
// start. Returns true when anything moved.
func postponePass(sc *Schedule, st *PostProcessStats) bool {
	changed := false
	for k := len(sc.Jobs) - 1; k >= 0; k-- {
		sj := &sc.Jobs[k]
		w := sj.Finish - sj.Start
		latestFinish := sj.Job.Deadline
		if k+1 < len(sc.Jobs) && sc.Jobs[k+1].Start < latestFinish {
			latestFinish = sc.Jobs[k+1].Start
		}
		if newStart := latestFinish - w; newStart > sj.Start {
			sj.Start = newStart
			sj.Finish = latestFinish
			st.Postponed++
			changed = true
		}
	}
	return changed
}

// swapsPass applies rules 2 and 3 left-to-right on adjacent pairs. A swap is
// committed only when re-spacing the pair inside its current time envelope
// keeps both jobs within release/deadline bounds, so the rest of the
// schedule is untouched. Returns true when any swap was committed.
func swapsPass(sc *Schedule, opt PostProcessOptions, st *PostProcessStats) bool {
	changed := false
	for k := 0; k+1 < len(sc.Jobs); k++ {
		a, b := sc.Jobs[k], sc.Jobs[k+1]

		wantSwap := false
		var rule *int
		switch {
		case !opt.DisableSameModeSwap && a.Mode == b.Mode && b.Job.Release < a.Job.Release:
			// Rule 2: same accuracy, run the earlier-released job first.
			wantSwap = true
			rule = &st.SameModeSwaps
		case !opt.DisableImpreciseLater && a.Mode == task.Imprecise && b.Mode == task.Accurate:
			// Rule 3: move the imprecise job later.
			wantSwap = true
			rule = &st.ImpreciseLaterSw
		}
		if !wantSwap {
			continue
		}

		// Envelope: [a.Start, b.Finish] — actually the pair may be separated
		// by idle; the envelope starts at the earliest the first job may run
		// (bounded by the previous job's finish) and ends at b.Finish.
		envStart := task.Time(0)
		if k > 0 {
			envStart = sc.Jobs[k-1].Finish
		}
		envEnd := b.Finish
		if k+2 < len(sc.Jobs) && sc.Jobs[k+2].Start < envEnd {
			envEnd = sc.Jobs[k+2].Start // defensive; schedules are ordered
		}

		wa := a.Finish - a.Start
		wb := b.Finish - b.Start

		// Place b first, then a, ASAP within the envelope.
		bStart := max64(envStart, b.Job.Release)
		bFinish := bStart + wb
		aStart := max64(bFinish, a.Job.Release)
		aFinish := aStart + wa
		if bFinish > b.Job.Deadline || aFinish > a.Job.Deadline || aFinish > envEnd {
			continue // infeasible swap
		}

		sc.Jobs[k] = ScheduledJob{Job: b.Job, Mode: b.Mode, Start: bStart, Finish: bFinish}
		sc.Jobs[k+1] = ScheduledJob{Job: a.Job, Mode: a.Mode, Start: aStart, Finish: aFinish}
		*rule++
		changed = true
		k++ // don't immediately reconsider the swapped pair
	}
	return changed
}

func max64(a, b task.Time) task.Time {
	if a > b {
		return a
	}
	return b
}
