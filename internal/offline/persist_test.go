package offline

import (
	"strings"
	"testing"

	"nprt/internal/sim"
	"nprt/internal/task"
)

func TestPlanJSONRoundTrip(t *testing.T) {
	s := twoJobSet(t)
	sc, err := BuildILPSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	post, _ := PostProcess(sc, PostProcessOptions{})

	var b strings.Builder
	if err := post.EncodeJSON(&b); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeSchedule(strings.NewReader(b.String()), s)
	if err != nil {
		t.Fatalf("decode: %v\n%s", err, b.String())
	}
	if len(back.Jobs) != len(post.Jobs) {
		t.Fatalf("job count changed: %d vs %d", len(back.Jobs), len(post.Jobs))
	}
	for k := range post.Jobs {
		if back.Jobs[k] != post.Jobs[k] {
			t.Errorf("job %d changed: %+v vs %+v", k, back.Jobs[k], post.Jobs[k])
		}
	}
	// The reloaded plan drives the simulator identically.
	resA, err := sim.Run(s, NewOA("orig", post), sim.Config{Hyperperiods: 20, Sampler: sim.NewRandomSampler(s, 3)})
	if err != nil {
		t.Fatal(err)
	}
	resB, err := sim.Run(s, NewOA("loaded", back), sim.Config{Hyperperiods: 20, Sampler: sim.NewRandomSampler(s, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if resA.MeanError() != resB.MeanError() || resA.Accurate != resB.Accurate {
		t.Error("reloaded plan behaves differently")
	}
}

func TestDecodeScheduleRejections(t *testing.T) {
	s := twoJobSet(t)
	sc, err := BuildILPSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := sc.EncodeJSON(&b); err != nil {
		t.Fatal(err)
	}
	good := b.String()

	// Wrong set: different hyper-period.
	other := mkSet(t,
		task.Task{Name: "x", Period: 14, WCETAccurate: 5, WCETImprecise: 2},
		task.Task{Name: "y", Period: 14, WCETAccurate: 5, WCETImprecise: 2},
	)
	if _, err := DecodeSchedule(strings.NewReader(good), other); err == nil {
		t.Error("fingerprint mismatch accepted")
	}

	// Garbage and unknown fields.
	if _, err := DecodeSchedule(strings.NewReader("nope"), s); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := DecodeSchedule(strings.NewReader(`{"tasks":2,"hyperperiod":10,"jobs":[],"x":1}`), s); err == nil {
		t.Error("unknown field accepted")
	}

	// Corrupted plan: out-of-range task id.
	corrupt := strings.Replace(good, `"task": 0`, `"task": 9`, 1)
	if _, err := DecodeSchedule(strings.NewReader(corrupt), s); err == nil {
		t.Error("out-of-range task accepted")
	}

	// Tampered timing: shift a start to overlap.
	tampered := strings.Replace(good, `"start": 2`, `"start": 0`, 1)
	if tampered != good {
		if _, err := DecodeSchedule(strings.NewReader(tampered), s); err == nil {
			t.Error("overlapping tampered plan accepted")
		}
	}
}
