package offline

import (
	"testing"

	"nprt/internal/policy"
	"nprt/internal/sim"
	"nprt/internal/task"
	"nprt/internal/trace"
)

// oaTestSet is accurate-infeasible (U ≈ 1.35) and imprecise-feasible, with
// randomized actual execution times well below WCET (ratio ~ the paper's
// WCET/BCET ≈ 10 setup).
func oaTestSet(t *testing.T) *task.Set {
	return mkSet(t,
		task.Task{
			Name: "a", Period: 20, WCETAccurate: 12, WCETImprecise: 4,
			ExecAccurate:  task.Dist{Mean: 5, Sigma: 1.5, Min: 1, Max: 12},
			ExecImprecise: task.Dist{Mean: 2, Sigma: 0.6, Min: 1, Max: 4},
			Error:         task.Dist{Mean: 4, Sigma: 1},
		},
		task.Task{
			Name: "b", Period: 40, WCETAccurate: 16, WCETImprecise: 5,
			ExecAccurate:  task.Dist{Mean: 7, Sigma: 2, Min: 1, Max: 16},
			ExecImprecise: task.Dist{Mean: 2.5, Sigma: 0.8, Min: 1, Max: 5},
			Error:         task.Dist{Mean: 8, Sigma: 2},
		},
		task.Task{
			Name: "c", Period: 40, WCETAccurate: 14, WCETImprecise: 6,
			ExecAccurate:  task.Dist{Mean: 6, Sigma: 2, Min: 1, Max: 14},
			ExecImprecise: task.Dist{Mean: 3, Sigma: 1, Min: 1, Max: 6},
			Error:         task.Dist{Mean: 2, Sigma: 0.5},
		},
	)
}

func runOA(t *testing.T, s *task.Set, p sim.Policy, seed uint64, hps int) *sim.Result {
	t.Helper()
	res, err := sim.Run(s, p, sim.Config{
		Hyperperiods: hps,
		Sampler:      sim.NewRandomSampler(s, seed),
		TraceLimit:   -1,
	})
	if err != nil {
		t.Fatalf("%s: %v", p.Name(), err)
	}
	return res
}

func TestOAPoliciesMeetDeadlinesAndValidate(t *testing.T) {
	s := oaTestSet(t)
	builders := []func(*task.Set) (*OAPolicy, error){NewILPOA, NewILPPostOA, NewFlippedEDF}
	for _, build := range builders {
		p, err := build(s)
		if err != nil {
			t.Fatal(err)
		}
		for seed := uint64(1); seed <= 3; seed++ {
			res := runOA(t, s, p, seed, 100)
			if res.Misses.Events != 0 {
				t.Errorf("%s seed %d: %d deadline misses", p.Name(), seed, res.Misses.Events)
			}
			vs := trace.Validate(res.Trace, trace.Options{RequireDeadlines: true, WCETBounds: true, Set: s})
			if len(vs) != 0 {
				t.Errorf("%s seed %d: trace violations: %v", p.Name(), seed, vs[0])
			}
			if res.Jobs != int64(100*s.JobsPerHyperperiod()) {
				t.Errorf("%s seed %d: executed %d jobs, want %d",
					p.Name(), seed, res.Jobs, 100*s.JobsPerHyperperiod())
			}
		}
	}
}

func TestOAUpgradesHappenAndReduceError(t *testing.T) {
	s := oaTestSet(t)
	imp := runOA(t, s, policy.NewEDFImprecise(), 7, 200)

	for _, build := range []func(*task.Set) (*OAPolicy, error){NewILPOA, NewILPPostOA, NewFlippedEDF} {
		p, err := build(s)
		if err != nil {
			t.Fatal(err)
		}
		res := runOA(t, s, p, 7, 200)
		if p.Upgrades == 0 && res.Accurate == 0 {
			t.Errorf("%s: no accurate executions at all", p.Name())
		}
		if res.MeanError() >= imp.MeanError() {
			t.Errorf("%s error %g not below EDF-Imprecise %g",
				p.Name(), res.MeanError(), imp.MeanError())
		}
	}
}

func TestPostProcessingImprovesOnPlainILP(t *testing.T) {
	s := oaTestSet(t)
	ilpOA, err := NewILPOA(s)
	if err != nil {
		t.Fatal(err)
	}
	postOA, err := NewILPPostOA(s)
	if err != nil {
		t.Fatal(err)
	}
	var ilpErr, postErr float64
	for seed := uint64(1); seed <= 5; seed++ {
		ilpErr += runOA(t, s, ilpOA, seed, 200).MeanError()
		postErr += runOA(t, s, postOA, seed, 200).MeanError()
	}
	// The paper's Table II shows post-processing reducing normalized error
	// (0.63 → 0.55). Require no regression with a small tolerance.
	if postErr > ilpErr*1.02 {
		t.Errorf("post-processing regressed error: ILP %g vs Post %g", ilpErr, postErr)
	}
}

func TestUpgradeDisabledMatchesPlan(t *testing.T) {
	s := oaTestSet(t)
	sc, err := BuildILPSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	p := NewOA("ILP-noOA", sc)
	p.DisableUpgrade = true
	res := runOA(t, s, p, 11, 50)
	_, planImp := sc.ModeCounts()
	if res.Imprecise != int64(planImp*50) {
		t.Errorf("disabled OA ran %d imprecise, plan has %d per hyper-period",
			res.Imprecise, planImp)
	}
	if p.Upgrades != 0 {
		t.Errorf("upgrades counted while disabled: %d", p.Upgrades)
	}
}

// With worst-case execution times and no post-processing the online
// adjustment can never upgrade an ASAP-planned imprecise job: the check
// t_cur + w ≤ f̂ = s + x always fails.
func TestNoUpgradesUnderWorstCaseASAP(t *testing.T) {
	s := oaTestSet(t)
	p, err := NewILPOA(s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(s, p, sim.Config{Hyperperiods: 10})
	if err != nil {
		t.Fatal(err)
	}
	if p.Upgrades != 0 {
		t.Errorf("upgrades under WCET sampling with ASAP plan: %d", p.Upgrades)
	}
	if res.Misses.Events != 0 {
		t.Errorf("deadline misses: %d", res.Misses.Events)
	}
}

// Post-processing moves f̂ later, so even WCET execution can upgrade jobs
// that sit before idle gaps.
func TestPostponementEnablesUpgradesUnderWorstCase(t *testing.T) {
	// Low-utilization single task: huge idle after each job.
	s := mkSet(t,
		task.Task{Name: "a", Period: 30, WCETAccurate: 9, WCETImprecise: 3,
			Error: task.Dist{Mean: 5}},
	)
	p, err := NewILPPostOA(s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(s, p, sim.Config{Hyperperiods: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Either the offline optimizer already chose accurate (enough slack) or
	// the online adjustment upgraded; in both cases no imprecise runs.
	if res.Imprecise != 0 {
		t.Errorf("imprecise executions remain: %d (upgrades %d)", res.Imprecise, p.Upgrades)
	}
}

func TestOAWrapsAcrossManyHyperperiods(t *testing.T) {
	s := oaTestSet(t)
	p, err := NewFlippedEDF(s)
	if err != nil {
		t.Fatal(err)
	}
	res := runOA(t, s, p, 3, 1000)
	if res.Jobs != int64(1000*s.JobsPerHyperperiod()) {
		t.Errorf("jobs = %d", res.Jobs)
	}
	if res.Misses.Events != 0 {
		t.Errorf("misses = %d", res.Misses.Events)
	}
}
