package offline

import (
	"math"
	"testing"

	"nprt/internal/feasibility"
	"nprt/internal/rng"
	"nprt/internal/task"
)

// bruteForceOptimum enumerates every 2^m mode assignment for the fixed
// order and returns the minimum total mean error over feasible ones
// (math.Inf(1) when none is feasible). It is the oracle for OptimizeModes.
func bruteForceOptimum(s *task.Set, order []task.Job) float64 {
	m := len(order)
	best := math.Inf(1)
	for mask := 0; mask < 1<<m; mask++ {
		var t task.Time
		err := 0.0
		feasible := true
		for k, j := range order {
			tk := s.Task(j.TaskID)
			start := t
			if j.Release > start {
				start = j.Release
			}
			var dur task.Time
			if mask>>k&1 == 1 {
				dur = tk.WCETImprecise
				err += tk.MeanError()
			} else {
				dur = tk.WCETAccurate
			}
			f := start + dur
			if f > j.Deadline {
				feasible = false
				break
			}
			t = f
		}
		if feasible && err < best {
			best = err
		}
	}
	return best
}

// randomSmallSet draws a 2–3 task set with a small hyper-period so the
// brute force stays under ~2^12 assignments.
func randomSmallSet(r *rng.Stream) *task.Set {
	periods := [][]task.Time{
		{6, 12}, {8, 16}, {10, 20}, {6, 18}, {10, 10},
		{6, 12, 12}, {8, 8, 16}, {10, 20, 20},
	}
	ps := periods[r.Intn(len(periods))]
	tasks := make([]task.Task, len(ps))
	for i, p := range ps {
		w := task.Time(2 + r.Intn(int(p)-2))
		x := task.Time(1 + r.Intn(int(w)-1))
		if x >= w {
			x = w - 1
		}
		tasks[i] = task.Task{
			Name: "t", Period: p, WCETAccurate: w, WCETImprecise: x,
			Error: task.Dist{Mean: 0.5 + 4*r.Float64()},
		}
	}
	s, err := task.New(tasks)
	if err != nil {
		return nil
	}
	return s
}

// TestOptimizeModesMatchesBruteForce fuzzes the exact Pareto DP against
// exhaustive enumeration on hundreds of random small instances.
func TestOptimizeModesMatchesBruteForce(t *testing.T) {
	r := rng.New(20240704)
	tested := 0
	for trial := 0; trial < 400; trial++ {
		s := randomSmallSet(r)
		if s == nil {
			continue
		}
		order, err := EDFOrder(s, task.Imprecise)
		if err != nil || len(order) > 12 {
			continue
		}
		want := bruteForceOptimum(s, order)
		modes, got, err := OptimizeModes(s, order)
		if math.IsInf(want, 1) {
			if err == nil {
				t.Fatalf("trial %d: DP found %g on a brute-force-infeasible instance\n%s",
					trial, got, s)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: DP infeasible but brute force found %g\n%s", trial, want, s)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: DP=%g brute=%g\n%s", trial, got, want, s)
		}
		// The returned assignment must itself be feasible and consistent.
		if _, err := ScheduleWithModes(s, order, modes); err != nil {
			t.Fatalf("trial %d: returned modes infeasible: %v", trial, err)
		}
		tested++
	}
	if tested < 100 {
		t.Fatalf("only %d instances exercised", tested)
	}
}

// TestModeILPMatchesBruteForce fuzzes the branch-and-bound MILP the same
// way (fewer trials; each solve is pricier).
func TestModeILPMatchesBruteForce(t *testing.T) {
	r := rng.New(77)
	tested := 0
	for trial := 0; trial < 60; trial++ {
		s := randomSmallSet(r)
		if s == nil {
			continue
		}
		order, err := EDFOrder(s, task.Imprecise)
		if err != nil || len(order) > 8 {
			continue
		}
		want := bruteForceOptimum(s, order)
		sc, err := SolveModeILP(s, order, 0, 0)
		if math.IsInf(want, 1) {
			if err == nil {
				t.Fatalf("trial %d: MILP found a schedule on an infeasible instance\n%s", trial, s)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: MILP failed but brute force found %g: %v\n%s", trial, want, err, s)
		}
		if math.Abs(sc.TotalMeanError()-want) > 1e-6 {
			t.Fatalf("trial %d: MILP=%g brute=%g\n%s", trial, sc.TotalMeanError(), want, s)
		}
		tested++
	}
	if tested < 20 {
		t.Fatalf("only %d instances exercised", tested)
	}
}

// TestFlippedEDFFeasibleWheneverTheoremHolds fuzzes the Jeffay guarantee:
// when Theorem 1 passes with imprecise WCETs, flipped EDF must place every
// job (it inherits EDF's feasibility guarantee on the reversed axis).
func TestFlippedEDFFeasibleWheneverTheoremHolds(t *testing.T) {
	r := rng.New(99)
	checked := 0
	for trial := 0; trial < 400; trial++ {
		s := randomSmallSet(r)
		if s == nil {
			continue
		}
		if !schedulableImprecise(s) {
			continue
		}
		sc, err := FlippedEDF(s)
		if err != nil {
			t.Fatalf("trial %d: flipped EDF failed on a Theorem-1-feasible set: %v\n%s",
				trial, err, s)
		}
		if err := sc.Validate(); err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, s)
		}
		checked++
	}
	if checked < 50 {
		t.Fatalf("only %d feasible instances exercised", checked)
	}
}

func schedulableImprecise(s *task.Set) bool {
	return feasibility.Schedulable(s, task.Imprecise)
}
