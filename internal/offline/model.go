package offline

import (
	"fmt"
	"math"
	"sort"
	"time"

	"nprt/internal/ilp"
	"nprt/internal/lp"
	"nprt/internal/task"
)

// BuildModeILP builds the §IV-A integer program for a fixed execution
// order: binary y_k (1 = imprecise) and continuous start s_k per job,
//
//	minimize   Σ e_k · y_k
//	subject to s_k ≥ r_k
//	           f̂_k = s_k + w_k + (x_k − w_k)·y_k ≤ d_k
//	           s_{k+1} ≥ f̂_k                      (non-preemptive chain)
//	           y_k ∈ {0, 1}.
//
// Variable layout: y_0..y_{m-1}, then s_0..s_{m-1}.
func BuildModeILP(s *task.Set, order []task.Job) *ilp.Problem {
	m := len(order)
	p := ilp.NewProblem(2 * m)
	for k, j := range order {
		tk := s.Task(j.TaskID)
		e := tk.MeanError()
		p.LP.C[k] = e
		p.SetBinary(k)

		w := float64(tk.WCETAccurate)
		x := float64(tk.WCETImprecise)
		sVar := m + k

		// s_k >= r_k (native lower bound; no tableau row)
		p.LP.SetBounds(sVar, float64(j.Release), math.Inf(1))
		// s_k + w + (x-w) y_k <= d_k
		coef := make([]float64, 2*m)
		coef[sVar] = 1
		coef[k] = x - w
		p.LP.AddConstraint(coef, lp.LE, float64(j.Deadline)-w, fmt.Sprintf("dl%d", k))
		// chain: s_{k+1} - s_k - (x-w) y_k >= w
		if k+1 < m {
			chain := make([]float64, 2*m)
			chain[m+k+1] = 1
			chain[sVar] = -1
			chain[k] = -(x - w)
			p.LP.AddConstraint(chain, lp.GE, w, fmt.Sprintf("chain%d", k))
		}
	}
	return p
}

// BuildModeILPRowBounds builds the same §IV-A program as BuildModeILP with
// every variable bound spelled as a dense constraint row (y_k ≤ 1,
// s_k ≥ r_k) instead of a native simplex bound — the pre-bounded-simplex
// formulation. It is retained as the baseline for differential tests and
// the solver benchmarks; combined with ilp.Options.DenseRowBounds and
// DisableHeuristic it reproduces the historical solver stack exactly.
func BuildModeILPRowBounds(s *task.Set, order []task.Job) *ilp.Problem {
	m := len(order)
	p := ilp.NewProblem(2 * m)
	for k, j := range order {
		tk := s.Task(j.TaskID)
		p.LP.C[k] = tk.MeanError()
		p.SetInteger(k)
		p.LP.AddBound(k, lp.LE, 1, fmt.Sprintf("bin%d", k))

		w := float64(tk.WCETAccurate)
		x := float64(tk.WCETImprecise)
		sVar := m + k

		p.LP.AddBound(sVar, lp.GE, float64(j.Release), fmt.Sprintf("rel%d", k))
		coef := make([]float64, 2*m)
		coef[sVar] = 1
		coef[k] = x - w
		p.LP.AddConstraint(coef, lp.LE, float64(j.Deadline)-w, fmt.Sprintf("dl%d", k))
		if k+1 < m {
			chain := make([]float64, 2*m)
			chain[m+k+1] = 1
			chain[sVar] = -1
			chain[k] = -(x - w)
			p.LP.AddConstraint(chain, lp.GE, w, fmt.Sprintf("chain%d", k))
		}
	}
	return p
}

// SolveModeILP solves the order-fixed MILP and lays out the schedule at
// ASAP starts. It exists to honour the paper's ILP formulation end-to-end;
// OptimizeModes computes the same optimum faster and is the default in the
// experiment harness (results are cross-checked in tests). maxNodes and
// timeLimit bound the branch-and-bound (zero means solver defaults).
func SolveModeILP(s *task.Set, order []task.Job, maxNodes int, timeLimit time.Duration) (*Schedule, error) {
	return SolveModeILPOpt(s, order, ilp.Options{MaxNodes: maxNodes, TimeLimit: timeLimit})
}

// SolveModeILPOpt is SolveModeILP with full control over the
// branch-and-bound (worker pool, budgets, bound encoding).
func SolveModeILPOpt(s *task.Set, order []task.Job, opt ilp.Options) (*Schedule, error) {
	p := BuildModeILP(s, order)
	sol, err := ilp.Solve(p, opt)
	if err != nil {
		return nil, err
	}
	switch sol.Status {
	case ilp.Optimal, ilp.Feasible:
	case ilp.Infeasible:
		return nil, ErrInfeasible
	default:
		return nil, fmt.Errorf("offline: mode ILP terminated %v without incumbent", sol.Status)
	}
	modes := make([]task.Mode, len(order))
	for k := range order {
		if sol.X[k] > 0.5 {
			modes[k] = task.Imprecise
		} else {
			modes[k] = task.Accurate
		}
	}
	return ScheduleWithModes(s, order, modes)
}

// BuildFullILP builds the complete §IV-A program in which the execution
// order itself is decided by the solver: per ordered pair (a<b) a binary
// z_{ab} (1 when a precedes b) with big-M disjunctive non-overlap
// constraints. The model grows quadratically and is intended for small
// instances (micro-benchmarks and tests that confirm order-fixing loses
// nothing on them).
//
// Variable layout: y_0..y_{m-1}, s_0..s_{m-1}, then z for each pair in
// lexicographic (a,b) order, a < b.
func BuildFullILP(s *task.Set, jobs []task.Job) *ilp.Problem {
	m := len(jobs)
	nPairs := m * (m - 1) / 2
	p := ilp.NewProblem(2*m + nPairs)
	bigM := float64(s.Hyperperiod() * 2)

	// pairVar indexes z_{ab} for a < b in lexicographic enumeration.
	pairVar := func(a, b int) int {
		return 2*m + a*(2*m-a-1)/2 + (b - a - 1)
	}

	dur := func(k int) (w, x float64) {
		tk := s.Task(jobs[k].TaskID)
		return float64(tk.WCETAccurate), float64(tk.WCETImprecise)
	}

	for k, j := range jobs {
		tk := s.Task(j.TaskID)
		p.LP.C[k] = tk.MeanError()
		p.SetBinary(k)
		w, x := dur(k)
		sVar := m + k
		p.LP.SetBounds(sVar, float64(j.Release), math.Inf(1))
		coef := make([]float64, p.LP.NumVars)
		coef[sVar] = 1
		coef[k] = x - w
		p.LP.AddConstraint(coef, lp.LE, float64(j.Deadline)-w, fmt.Sprintf("dl%d", k))
	}

	for a := 0; a < m; a++ {
		for b := a + 1; b < m; b++ {
			z := pairVar(a, b)
			p.SetBinary(z)
			wa, xa := dur(a)
			wb, xb := dur(b)
			// a before b (z=1): s_b >= s_a + dur_a − M(1−z)
			//   s_b − s_a − (xa−wa) y_a + M·z <= ... rearranged:
			//   s_b − s_a − (xa−wa)·y_a ≥ wa − M(1−z)
			//   → s_b − s_a − (xa−wa)·y_a − M·z ≥ wa − M
			row := make([]float64, p.LP.NumVars)
			row[m+b] = 1
			row[m+a] = -1
			row[a] = -(xa - wa)
			row[z] = -bigM
			p.LP.AddConstraint(row, lp.GE, wa-bigM, fmt.Sprintf("ord%d<%d", a, b))
			// b before a (z=0): s_a − s_b − (xb−wb)·y_b + M·z ≥ wb
			row2 := make([]float64, p.LP.NumVars)
			row2[m+a] = 1
			row2[m+b] = -1
			row2[b] = -(xb - wb)
			row2[z] = bigM
			p.LP.AddConstraint(row2, lp.GE, wb, fmt.Sprintf("ord%d<%d", b, a))
		}
	}
	return p
}

// SolveFullILP solves the order-free model on small instances and returns
// the schedule in solver-chosen execution order.
func SolveFullILP(s *task.Set, jobs []task.Job, maxNodes int, timeLimit time.Duration) (*Schedule, error) {
	return SolveFullILPOpt(s, jobs, ilp.Options{MaxNodes: maxNodes, TimeLimit: timeLimit})
}

// SolveFullILPOpt is SolveFullILP with full branch-and-bound options.
func SolveFullILPOpt(s *task.Set, jobs []task.Job, opt ilp.Options) (*Schedule, error) {
	p := BuildFullILP(s, jobs)
	sol, err := ilp.Solve(p, opt)
	if err != nil {
		return nil, err
	}
	switch sol.Status {
	case ilp.Optimal, ilp.Feasible:
	case ilp.Infeasible:
		return nil, ErrInfeasible
	default:
		return nil, fmt.Errorf("offline: full ILP terminated %v without incumbent", sol.Status)
	}
	m := len(jobs)
	type row struct {
		job   task.Job
		mode  task.Mode
		start task.Time
	}
	rows := make([]row, m)
	for k, j := range jobs {
		mode := task.Accurate
		if sol.X[k] > 0.5 {
			mode = task.Imprecise
		}
		rows[k] = row{job: j, mode: mode, start: task.Time(sol.X[m+k] + 0.5)}
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].start < rows[b].start })
	order := make([]task.Job, m)
	modes := make([]task.Mode, m)
	for i, r := range rows {
		order[i] = r.job
		modes[i] = r.mode
	}
	return ScheduleWithModes(s, order, modes)
}
