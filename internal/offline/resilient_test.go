package offline

import (
	"errors"
	"strings"
	"testing"
	"time"

	"nprt/internal/ilp"
	"nprt/internal/sim"
	"nprt/internal/task"
	"nprt/internal/trace"
)

// validateRun drives the planned policy through the simulator and checks the
// trace against the full oracle.
func validateRun(t *testing.T, s *task.Set, p sim.Policy) *sim.Result {
	t.Helper()
	res, err := sim.Run(s, p, sim.Config{
		Hyperperiods: 50,
		Sampler:      sim.NewRandomSampler(s, 5),
		TraceLimit:   -1,
	})
	if err != nil {
		t.Fatalf("%s: %v", p.Name(), err)
	}
	if vs := trace.Validate(res.Trace, trace.Options{RequireDeadlines: true, WCETBounds: true, Set: s}); len(vs) != 0 {
		t.Fatalf("%s: trace violations: %v", p.Name(), vs[:min(3, len(vs))])
	}
	return res
}

func TestResilientPlanTopRung(t *testing.T) {
	s := oaTestSet(t)
	p, pv, err := ResilientPlan(s, ResilientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pv.Rung != RungILP || pv.Degraded || len(pv.Failures) != 0 {
		t.Fatalf("expected undegraded top rung, got %s", pv)
	}
	if pv.Attempts != 1 || pv.FinalBudget != DefaultILPBudget {
		t.Errorf("attempts=%d budget=%v, want 1 attempt at the default budget",
			pv.Attempts, pv.FinalBudget)
	}
	if p.Name() != "ILP+Post+OA" || pv.Policy != p.Name() {
		t.Errorf("policy %q / provenance %q", p.Name(), pv.Policy)
	}
	validateRun(t, s, p)
}

// TestResilientPlanFallsToFlippedEDF is the acceptance scenario: under an
// artificially tiny ILP budget the chain degrades without error, records
// provenance, and the fallback's schedule still passes trace validation.
func TestResilientPlanFallsToFlippedEDF(t *testing.T) {
	s := oaTestSet(t)
	p, pv, err := ResilientPlan(s, ResilientOptions{
		ILP:     ilp.Options{TimeLimit: time.Nanosecond, MaxNodes: 1, DisableHeuristic: true},
		Retries: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pv.Rung != RungFlippedEDF || !pv.Degraded {
		t.Fatalf("expected degradation to flipped-edf+oa, got %s", pv)
	}
	if pv.Attempts != 3 || len(pv.Failures) != 3 {
		t.Errorf("attempts=%d failures=%d, want 3 budget-exhausted ILP attempts",
			pv.Attempts, len(pv.Failures))
	}
	// Backoff doubled the budget twice: 1ns → 4ns.
	if pv.FinalBudget != 4*time.Nanosecond {
		t.Errorf("final budget %v, want 4ns after two doublings", pv.FinalBudget)
	}
	for i, f := range pv.Failures {
		if f.Rung != RungILP || f.Attempt != i+1 {
			t.Errorf("failure %d = %v, want ILP attempt %d", i, f, i+1)
		}
	}
	if p.Name() != "Flipped EDF" {
		t.Errorf("policy = %q", p.Name())
	}
	if !strings.Contains(pv.String(), "degraded=true") {
		t.Errorf("provenance summary %q", pv)
	}
	validateRun(t, s, p)
}

func TestResilientPlanFallsToESR(t *testing.T) {
	// Non-zero first releases make every offline rung structurally
	// impossible (ErrNotZeroRelease); only the online rung remains.
	s := mkSet(t,
		task.Task{Name: "a", Period: 20, Release: 3, WCETAccurate: 8, WCETImprecise: 3, Error: task.Dist{Mean: 2}},
		task.Task{Name: "b", Period: 40, WCETAccurate: 10, WCETImprecise: 4, Error: task.Dist{Mean: 5}},
	)
	p, pv, err := ResilientPlan(s, ResilientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pv.Rung != RungEDFESR || !pv.Degraded {
		t.Fatalf("expected degradation to edf+esr, got %s", pv)
	}
	// The structural error is terminal: no backoff retries.
	if pv.Attempts != 1 {
		t.Errorf("attempts = %d, want 1 (ErrNotZeroRelease is not retryable)", pv.Attempts)
	}
	if len(pv.Failures) != 2 {
		t.Fatalf("failures = %v, want one per offline rung", pv.Failures)
	}
	for _, f := range pv.Failures {
		if !errors.Is(f, ErrNotZeroRelease) {
			t.Errorf("failure %v does not unwrap to ErrNotZeroRelease", f)
		}
	}
	validateRun(t, s, p)
}

func TestRungString(t *testing.T) {
	for r, want := range map[Rung]string{
		RungILP: "ilp+post+oa", RungFlippedEDF: "flipped-edf+oa", RungEDFESR: "edf+esr",
	} {
		if r.String() != want {
			t.Errorf("Rung %d = %q, want %q", r, r.String(), want)
		}
	}
}

func TestOAValidateForRejectsMismatchedSet(t *testing.T) {
	s := oaTestSet(t)
	p, err := NewFlippedEDF(s)
	if err != nil {
		t.Fatal(err)
	}
	other := mkSet(t,
		task.Task{Name: "x", Period: 10, WCETAccurate: 4, WCETImprecise: 2, Error: task.Dist{Mean: 1}},
	)
	if err := p.ValidateFor(other); err == nil {
		t.Fatal("mismatched set accepted")
	}
	// The engine surfaces it as a structured error, not a panic.
	if _, err := sim.Run(other, p, sim.Config{Hyperperiods: 1}); err == nil ||
		!strings.Contains(err.Error(), "rejects set") {
		t.Errorf("Run error = %v, want rejects-set", err)
	}
	if err := p.ValidateFor(s); err != nil {
		t.Errorf("own set rejected: %v", err)
	}
}

// TestOADropAware: the offline+OA family must skip releases lost to fault
// injection instead of committing to jobs that never arrive.
func TestOADropAware(t *testing.T) {
	s := oaTestSet(t)
	p, err := NewFlippedEDF(s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(s, p, sim.Config{
		Hyperperiods: 80,
		Sampler:      sim.NewRandomSampler(s, 9),
		TraceLimit:   -1,
		Faults:       sim.NewFaultPlan(23, sim.FaultRates{DropProb: 0.08}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Total.DroppedReleases == 0 {
		t.Fatal("no releases dropped at DropProb=0.08")
	}
	if vs := trace.Validate(res.Trace, trace.Options{
		WCETBounds: true, Set: s, AllowFaults: true,
	}); len(vs) != 0 {
		t.Errorf("trace violations: %v", vs[:min(3, len(vs))])
	}
}

// StartRung lets a caller begin the chain below the ILP: starting at
// Flipped EDF must skip the solver entirely (no attempts, no failures, not
// degraded), and starting at EDF+ESR must return the online policy directly.
func TestResilientPlanStartRung(t *testing.T) {
	s := task.MustNew([]task.Task{
		{Name: "a", Period: 20, WCETAccurate: 8, WCETImprecise: 2},
		{Name: "b", Period: 40, WCETAccurate: 12, WCETImprecise: 3},
	})

	p, pv, err := ResilientPlan(s, ResilientOptions{StartRung: RungFlippedEDF})
	if err != nil {
		t.Fatal(err)
	}
	if pv.Rung != RungFlippedEDF || pv.Attempts != 0 || pv.Degraded || len(pv.Failures) != 0 {
		t.Errorf("StartRung=FlippedEDF provenance = %+v", pv)
	}
	if p.Name() != "Flipped EDF+OA" && p.Name() != "Flipped EDF" {
		// OA policies report "<label>+OA"-style names; pin only that the ILP
		// label is absent.
		t.Logf("policy name %q", p.Name())
	}

	p, pv, err = ResilientPlan(s, ResilientOptions{StartRung: RungEDFESR})
	if err != nil {
		t.Fatal(err)
	}
	if pv.Rung != RungEDFESR || pv.Degraded || len(pv.Failures) != 0 {
		t.Errorf("StartRung=EDFESR provenance = %+v", pv)
	}
	if p.Name() != "EDF+ESR" {
		t.Errorf("StartRung=EDFESR policy = %q", p.Name())
	}
}
