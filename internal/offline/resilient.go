package offline

import (
	"errors"
	"fmt"
	"time"

	"nprt/internal/esr"
	"nprt/internal/ilp"
	"nprt/internal/sim"
	"nprt/internal/task"
)

// Rung identifies one stage of the resilient planner's degradation chain,
// ordered from most to least planned.
type Rung uint8

const (
	// RungILP is the full §IV-A/B pipeline: order-fixed mode ILP (any
	// incumbent on budget — Feasible is accepted, not just Optimal),
	// post-processing, online adjustment.
	RungILP Rung = iota
	// RungFlippedEDF is the §IV-C heuristic plan plus online adjustment —
	// no ILP involved, so it cannot time out.
	RungFlippedEDF
	// RungEDFESR is the pure online fallback: EDF dispatch with
	// execution-slack reclamation, needing no offline plan at all.
	RungEDFESR
)

// String names the rung (JSON/provenance key).
func (r Rung) String() string {
	switch r {
	case RungILP:
		return "ilp+post+oa"
	case RungFlippedEDF:
		return "flipped-edf+oa"
	case RungEDFESR:
		return "edf+esr"
	}
	return fmt.Sprintf("rung%d", uint8(r))
}

// RungError records why one rung of the chain could not produce a plan.
type RungError struct {
	Rung    Rung
	Attempt int // 1-based ILP attempt number; 0 when retries don't apply
	Err     error
}

// Error implements error.
func (e *RungError) Error() string {
	if e.Attempt > 0 {
		return fmt.Sprintf("%s attempt %d: %v", e.Rung, e.Attempt, e.Err)
	}
	return fmt.Sprintf("%s: %v", e.Rung, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *RungError) Unwrap() error { return e.Err }

// PlanProvenance records which rung of the degradation chain produced the
// schedule and why the rungs above it were passed over — the audit trail a
// production deployment logs when its planner degrades.
type PlanProvenance struct {
	// Rung that produced the returned policy.
	Rung Rung
	// Policy is the returned policy's report label.
	Policy string
	// Attempts is the number of ILP solves tried (retries included).
	Attempts int
	// FinalBudget is the ILP time budget of the last attempt, after backoff
	// growth; zero when the ILP rung was not attempted or had no time limit.
	FinalBudget time.Duration
	// Degraded reports whether any rung above the chosen one failed.
	Degraded bool
	// Failures holds one structured error per failed attempt/rung, in the
	// order they were tried.
	Failures []*RungError
}

// String renders a one-line audit summary.
func (pv *PlanProvenance) String() string {
	s := fmt.Sprintf("plan: rung=%s attempts=%d degraded=%v", pv.Rung, pv.Attempts, pv.Degraded)
	for _, f := range pv.Failures {
		s += "; " + f.Error()
	}
	return s
}

// ResilientOptions parameterizes ResilientPlan.
type ResilientOptions struct {
	// ILP carries the branch-and-bound budgets of the first ILP attempt
	// (time limit, node budget, worker pool). A zero TimeLimit is replaced
	// by DefaultILPBudget so the rung can never hang unbounded.
	ILP ilp.Options
	// Retries is how many additional ILP attempts are made after a
	// budget-exhausted solve, each with the budgets scaled by Backoff.
	// Default 1.
	Retries int
	// Backoff multiplies TimeLimit and MaxNodes between ILP attempts.
	// Default 2.
	Backoff float64
	// StartRung begins the chain below RungILP when a caller cannot afford
	// the solver at all — the long-running runtime replans on every admission
	// change and typically starts at RungFlippedEDF. Skipped rungs are a
	// caller choice, not failures: they are not recorded in Failures and do
	// not mark the provenance Degraded.
	StartRung Rung
}

// DefaultILPBudget bounds the ILP rung when the caller sets no time limit:
// a planner whose first rung can block forever is not resilient.
const DefaultILPBudget = 2 * time.Second

// ResilientPlan builds a scheduling policy for the set by walking the
// degradation chain
//
//	ILP(+Post)+OA  →  Flipped EDF + OA  →  EDF+ESR
//
// with timeout/retry/backoff around the ILP stage. Budget-exhausted solves
// (terminated at a node or time limit without an incumbent — Feasible
// incumbents are accepted) are retried with Backoff-scaled budgets; terminal
// failures (infeasibility, non-zero first releases) skip ahead immediately.
// The returned PlanProvenance records the rung that produced the policy and
// a structured RungError per failure, so degradation is observable rather
// than silent. The final rung needs no offline plan and always succeeds;
// the error return is reserved for internal failures (a rewrite producing
// an invalid schedule, say).
func ResilientPlan(s *task.Set, opt ResilientOptions) (sim.Policy, *PlanProvenance, error) {
	if opt.Retries < 0 {
		opt.Retries = 0
	} else if opt.Retries == 0 {
		opt.Retries = 1
	}
	if opt.Backoff <= 1 {
		opt.Backoff = 2
	}
	if opt.ILP.TimeLimit <= 0 {
		opt.ILP.TimeLimit = DefaultILPBudget
	}

	pv := &PlanProvenance{}

	// Rung 1: the ILP pipeline, with retry/backoff on exhausted budgets.
	ilpOpt := opt.ILP
	for attempt := 1; opt.StartRung <= RungILP && attempt <= 1+opt.Retries; attempt++ {
		pv.Attempts = attempt
		pv.FinalBudget = ilpOpt.TimeLimit
		p, err := buildILPPostOA(s, ilpOpt)
		if err == nil {
			pv.Rung, pv.Policy = RungILP, p.Name()
			return p, pv, nil
		}
		pv.Failures = append(pv.Failures, &RungError{Rung: RungILP, Attempt: attempt, Err: err})
		if !retryableILP(err) {
			break // infeasible or structurally impossible: backoff won't help
		}
		ilpOpt.TimeLimit = time.Duration(float64(ilpOpt.TimeLimit) * opt.Backoff)
		if ilpOpt.MaxNodes > 0 {
			ilpOpt.MaxNodes = int(float64(ilpOpt.MaxNodes) * opt.Backoff)
		}
	}
	// Degradation means a rung we *tried* failed; rungs skipped by
	// StartRung were never owed to the caller.
	pv.Degraded = len(pv.Failures) > 0

	// Rung 2: Flipped EDF needs no solver, only offline feasibility.
	if opt.StartRung <= RungFlippedEDF {
		if sc, err := FlippedEDF(s); err != nil {
			pv.Failures = append(pv.Failures, &RungError{Rung: RungFlippedEDF, Err: err})
			pv.Degraded = true
		} else {
			p := NewOA("Flipped EDF", sc)
			pv.Rung, pv.Policy = RungFlippedEDF, p.Name()
			return p, pv, nil
		}
	}

	// Rung 3: pure online EDF+ESR — no plan required, cannot fail.
	p := esr.New()
	pv.Rung, pv.Policy = RungEDFESR, p.Name()
	return p, pv, nil
}

// buildILPPostOA is NewILPPostOA driven by the true §IV-A branch-and-bound
// under explicit budgets instead of the exact DP (the DP cannot time out, so
// it would never exercise the chain).
func buildILPPostOA(s *task.Set, opt ilp.Options) (*OAPolicy, error) {
	order, err := EDFOrder(s, task.Deepest)
	if err != nil {
		return nil, err
	}
	sc, err := SolveModeILPOpt(s, order, opt)
	if err != nil {
		return nil, err
	}
	post, _ := PostProcess(sc, PostProcessOptions{})
	if err := post.Validate(); err != nil {
		return nil, fmt.Errorf("offline: post-processing produced invalid schedule: %w", err)
	}
	return NewOA("ILP+Post+OA", post), nil
}

// retryableILP reports whether a bigger budget could change the outcome.
func retryableILP(err error) bool {
	return !errors.Is(err, ErrInfeasible) && !errors.Is(err, ErrNotZeroRelease)
}
