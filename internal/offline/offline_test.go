package offline

import (
	"errors"
	"math"
	"strings"
	"testing"

	"nprt/internal/feasibility"
	"nprt/internal/task"
)

func mkSet(t *testing.T, tasks ...task.Task) *task.Set {
	t.Helper()
	s, err := task.New(tasks)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// twoJobSet: both accurate does not fit in the shared period; the optimum
// runs the cheap-error task imprecise.
// a: w=6 x=2 e=1; b: w=5 x=2 e=10; p=10 both. Optimal: a imprecise, b
// accurate → error 1 (finishes 2+5=7 ≤ 10).
func twoJobSet(t *testing.T) *task.Set {
	return mkSet(t,
		task.Task{Name: "a", Period: 10, WCETAccurate: 6, WCETImprecise: 2, Error: task.Dist{Mean: 1}},
		task.Task{Name: "b", Period: 10, WCETAccurate: 5, WCETImprecise: 2, Error: task.Dist{Mean: 10}},
	)
}

func TestEDFOrderSimple(t *testing.T) {
	s := mkSet(t,
		task.Task{Name: "fast", Period: 10, WCETAccurate: 3, WCETImprecise: 1},
		task.Task{Name: "slow", Period: 20, WCETAccurate: 8, WCETImprecise: 3},
	)
	order, err := EDFOrder(s, task.Imprecise)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 {
		t.Fatalf("order has %d jobs", len(order))
	}
	// At t=0 both released; fast (deadline 10) before slow (deadline 20),
	// then fast's second job.
	if order[0].TaskID != 0 || order[1].TaskID != 1 || order[2].TaskID != 0 {
		t.Errorf("order = %v", order)
	}
}

func TestEDFOrderRejectsPhases(t *testing.T) {
	s := mkSet(t, task.Task{Name: "a", Period: 10, Release: 2, WCETAccurate: 3, WCETImprecise: 1})
	if _, err := EDFOrder(s, task.Imprecise); !errors.Is(err, ErrNotZeroRelease) {
		t.Errorf("err = %v", err)
	}
}

func TestOptimizeModesHandExample(t *testing.T) {
	s := twoJobSet(t)
	order, err := EDFOrder(s, task.Imprecise)
	if err != nil {
		t.Fatal(err)
	}
	modes, errSum, err := OptimizeModes(s, order)
	if err != nil {
		t.Fatal(err)
	}
	if errSum != 1 {
		t.Errorf("optimal error = %g, want 1", errSum)
	}
	// Order is a then b (task IDs 0,1); a imprecise, b accurate.
	for k, j := range order {
		want := task.Accurate
		if j.TaskID == 0 {
			want = task.Imprecise
		}
		if modes[k] != want {
			t.Errorf("job %v mode = %v, want %v", j, modes[k], want)
		}
	}
}

func TestOptimizeModesInfeasible(t *testing.T) {
	s := mkSet(t,
		task.Task{Name: "a", Period: 10, WCETAccurate: 8, WCETImprecise: 6},
		task.Task{Name: "b", Period: 10, WCETAccurate: 8, WCETImprecise: 6},
	)
	order, err := EDFOrder(s, task.Imprecise)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := OptimizeModes(s, order); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestBuildILPScheduleValidAndOptimal(t *testing.T) {
	s := twoJobSet(t)
	sc, err := BuildILPSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	if sc.TotalMeanError() != 1 {
		t.Errorf("planned error = %g, want 1", sc.TotalMeanError())
	}
	acc, imp := sc.ModeCounts()
	if acc != 1 || imp != 1 {
		t.Errorf("mode counts = %d/%d", acc, imp)
	}
}

// Cross-check: the exact Pareto DP and the branch-and-bound MILP agree on
// the optimal objective for a spread of generated sets.
func TestDPMatchesMILP(t *testing.T) {
	cases := []*task.Set{
		twoJobSet(t),
		mkSet(t,
			task.Task{Name: "a", Period: 6, WCETAccurate: 4, WCETImprecise: 1, Error: task.Dist{Mean: 2}},
			task.Task{Name: "b", Period: 12, WCETAccurate: 6, WCETImprecise: 2, Error: task.Dist{Mean: 3}},
		),
		mkSet(t,
			task.Task{Name: "a", Period: 8, WCETAccurate: 5, WCETImprecise: 2, Error: task.Dist{Mean: 7}},
			task.Task{Name: "b", Period: 16, WCETAccurate: 9, WCETImprecise: 3, Error: task.Dist{Mean: 1}},
			task.Task{Name: "c", Period: 16, WCETAccurate: 4, WCETImprecise: 2, Error: task.Dist{Mean: 4}},
		),
	}
	for ci, s := range cases {
		order, err := EDFOrder(s, task.Imprecise)
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		_, dpErr, err := OptimizeModes(s, order)
		if err != nil {
			t.Fatalf("case %d: DP: %v", ci, err)
		}
		sc, err := SolveModeILP(s, order, 0, 0)
		if err != nil {
			t.Fatalf("case %d: MILP: %v", ci, err)
		}
		if math.Abs(sc.TotalMeanError()-dpErr) > 1e-6 {
			t.Errorf("case %d: MILP error %g != DP error %g", ci, sc.TotalMeanError(), dpErr)
		}
		if err := sc.Validate(); err != nil {
			t.Errorf("case %d: MILP schedule invalid: %v", ci, err)
		}
	}
}

// The order-free full MILP can only do as well or better than the
// order-fixed optimum, and on these micro cases it matches it.
func TestFullILPMicro(t *testing.T) {
	s := twoJobSet(t)
	jobs := s.JobsWithin(0, s.Hyperperiod())
	sc, err := SolveFullILP(s, jobs, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	order, _ := EDFOrder(s, task.Imprecise)
	_, dpErr, err := OptimizeModes(s, order)
	if err != nil {
		t.Fatal(err)
	}
	if sc.TotalMeanError() > dpErr+1e-9 {
		t.Errorf("full ILP error %g worse than order-fixed %g", sc.TotalMeanError(), dpErr)
	}
}

func TestFlippedEDFValidALAPAllImprecise(t *testing.T) {
	s := mkSet(t,
		task.Task{Name: "a", Period: 10, WCETAccurate: 6, WCETImprecise: 2, Error: task.Dist{Mean: 1}},
		task.Task{Name: "b", Period: 20, WCETAccurate: 9, WCETImprecise: 3, Error: task.Dist{Mean: 2}},
	)
	if !feasibility.Schedulable(s, task.Imprecise) {
		t.Fatal("premise: imprecise-feasible")
	}
	sc, err := FlippedEDF(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	acc, imp := sc.ModeCounts()
	if acc != 0 || imp != len(sc.Jobs) {
		t.Errorf("flipped EDF not all-imprecise: %d/%d", acc, imp)
	}
	// ALAP: the last job must end exactly at its deadline (= P here).
	last := sc.Jobs[len(sc.Jobs)-1]
	if last.Finish != last.Job.Deadline {
		t.Errorf("last job ends %d, deadline %d — not as-late-as-possible", last.Finish, last.Job.Deadline)
	}
	// Every job ends either at its deadline or flush against its successor.
	for k := 0; k+1 < len(sc.Jobs); k++ {
		sj := sc.Jobs[k]
		if sj.Finish != sj.Job.Deadline && sj.Finish != sc.Jobs[k+1].Start {
			t.Errorf("job %v ends %d: neither deadline %d nor successor start %d",
				sj.Job, sj.Finish, sj.Job.Deadline, sc.Jobs[k+1].Start)
		}
	}
}

func TestFlippedEDFInfeasibleSet(t *testing.T) {
	s := mkSet(t,
		task.Task{Name: "a", Period: 10, WCETAccurate: 8, WCETImprecise: 6},
		task.Task{Name: "b", Period: 10, WCETAccurate: 8, WCETImprecise: 6},
	)
	if _, err := FlippedEDF(s); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestPostProcessKeepsValidityAndModes(t *testing.T) {
	s := mkSet(t,
		task.Task{Name: "a", Period: 10, WCETAccurate: 6, WCETImprecise: 2, Error: task.Dist{Mean: 1}},
		task.Task{Name: "b", Period: 20, WCETAccurate: 9, WCETImprecise: 3, Error: task.Dist{Mean: 2}},
		task.Task{Name: "c", Period: 40, WCETAccurate: 11, WCETImprecise: 4, Error: task.Dist{Mean: 5}},
	)
	sc, err := BuildILPSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	post, st := PostProcess(sc, PostProcessOptions{})
	if err := post.Validate(); err != nil {
		t.Fatalf("post-processed schedule invalid: %v", err)
	}
	if post.TotalMeanError() != sc.TotalMeanError() {
		t.Errorf("post-processing changed planned error: %g → %g",
			sc.TotalMeanError(), post.TotalMeanError())
	}
	if st.Passes == 0 {
		t.Error("no passes recorded")
	}
	// Postponement must never reduce any f̂ sum.
	var sumBefore, sumAfter task.Time
	for _, sj := range sc.Jobs {
		sumBefore += sj.Finish
	}
	for _, sj := range post.Jobs {
		sumAfter += sj.Finish
	}
	if sumAfter < sumBefore {
		t.Errorf("Σf̂ decreased: %d → %d", sumBefore, sumAfter)
	}
	// Input untouched.
	if err := sc.Validate(); err != nil {
		t.Errorf("input schedule mutated: %v", err)
	}
}

func TestPostponeRaisesFinishTimes(t *testing.T) {
	// Single task, half-utilized: every job can postpone to its deadline.
	s := mkSet(t,
		task.Task{Name: "a", Period: 10, WCETAccurate: 7, WCETImprecise: 3, Error: task.Dist{Mean: 1}},
	)
	sc, err := FlippedEDF(s) // already ALAP
	if err != nil {
		t.Fatal(err)
	}
	ilpSc, err := BuildILPSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	post, stats := PostProcess(ilpSc, PostProcessOptions{})
	if err := post.Validate(); err != nil {
		t.Fatal(err)
	}
	// For planned-imprecise jobs, postponement should reach the ALAP finish.
	for k := range post.Jobs {
		if post.Jobs[k].Mode == task.Imprecise && post.Jobs[k].Finish != sc.Jobs[k].Finish {
			t.Errorf("job %d: postponed finish %d != ALAP finish %d",
				k, post.Jobs[k].Finish, sc.Jobs[k].Finish)
		}
	}
	_ = stats
}

func TestPostProcessAblationSwitches(t *testing.T) {
	s := mkSet(t,
		task.Task{Name: "a", Period: 10, WCETAccurate: 6, WCETImprecise: 2, Error: task.Dist{Mean: 1}},
		task.Task{Name: "b", Period: 20, WCETAccurate: 9, WCETImprecise: 3, Error: task.Dist{Mean: 2}},
	)
	sc, err := BuildILPSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	post, st := PostProcess(sc, PostProcessOptions{
		DisablePostpone: true, DisableSameModeSwap: true, DisableImpreciseLater: true,
	})
	if st.Postponed != 0 || st.SameModeSwaps != 0 || st.ImpreciseLaterSw != 0 {
		t.Errorf("disabled rewrites still fired: %+v", st)
	}
	for k := range post.Jobs {
		if post.Jobs[k] != sc.Jobs[k] {
			t.Errorf("all-disabled post-processing changed the schedule at %d", k)
		}
	}
}

func TestImpreciseLaterSwapFires(t *testing.T) {
	// Construct a schedule with an (imprecise, accurate) adjacent pair that
	// can legally swap: both jobs released at 0, shared deadline window.
	s := mkSet(t,
		task.Task{Name: "a", Period: 20, WCETAccurate: 6, WCETImprecise: 2, Error: task.Dist{Mean: 1}},
		task.Task{Name: "b", Period: 20, WCETAccurate: 5, WCETImprecise: 2, Error: task.Dist{Mean: 10}},
	)
	// Manually: a imprecise first, b accurate second.
	order, _ := EDFOrder(s, task.Imprecise)
	sc, err := ScheduleWithModes(s, order, []task.Mode{task.Imprecise, task.Accurate})
	if err != nil {
		t.Fatal(err)
	}
	post, st := PostProcess(sc, PostProcessOptions{DisablePostpone: true})
	if st.ImpreciseLaterSw == 0 {
		t.Fatalf("rule 3 did not fire: %+v", st)
	}
	if post.Jobs[0].Mode != task.Accurate || post.Jobs[1].Mode != task.Imprecise {
		t.Errorf("swap not applied: %+v", post.Jobs)
	}
	if err := post.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleValidateCatchesCorruption(t *testing.T) {
	s := twoJobSet(t)
	sc, err := BuildILPSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	cases := []func(*Schedule){
		func(c *Schedule) { c.Jobs = c.Jobs[:1] },                         // missing job
		func(c *Schedule) { c.Jobs[1] = c.Jobs[0] },                       // duplicate
		func(c *Schedule) { c.Jobs[0].Finish += 1 },                       // wrong duration
		func(c *Schedule) { c.Jobs[0].Start -= 1; c.Jobs[0].Finish -= 1 }, // before release? start 0 → -1
		func(c *Schedule) {
			c.Jobs[1].Start = 0
			c.Jobs[1].Finish = c.Jobs[1].Start + (c.Jobs[1].Finish - c.Jobs[1].Start)
		}, // overlap
	}
	for i, corrupt := range cases {
		c := sc.Clone()
		corrupt(c)
		if err := c.Validate(); err == nil {
			t.Errorf("corruption %d not detected", i)
		}
	}
}

func TestBestEffortFallbacksWithinPackage(t *testing.T) {
	// Overloaded even at imprecise WCETs → strict builders fail, the
	// best-effort constructors return an all-imprecise ASAP plan.
	s := mkSet(t,
		task.Task{Name: "a", Period: 10, WCETAccurate: 9, WCETImprecise: 6,
			Error: task.Dist{Mean: 1}},
		task.Task{Name: "b", Period: 10, WCETAccurate: 9, WCETImprecise: 6,
			Error: task.Dist{Mean: 1}},
	)
	if _, err := NewILPOA(s); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("strict builder error = %v", err)
	}
	for _, build := range []func(*task.Set) (*OAPolicy, error){
		NewILPOABestEffort, NewILPPostOABestEffort, NewFlippedEDFBestEffort,
	} {
		p, err := build(s)
		if err != nil {
			t.Fatal(err)
		}
		// The fallback plan covers every hyper-period job all-imprecise.
		acc, imp := p.Sched.ModeCounts()
		if acc != 0 || imp != s.JobsPerHyperperiod() {
			t.Errorf("%s fallback plan modes = %d/%d", p.Name(), acc, imp)
		}
		// And the plan's WCET chain overruns some deadline (that is why it
		// is best-effort).
		if err := p.Sched.Validate(); err == nil {
			t.Errorf("%s fallback plan unexpectedly valid", p.Name())
		}
	}
	// Sanity: a feasible set must NOT trigger the fallback.
	ok := mkSet(t,
		task.Task{Name: "a", Period: 10, WCETAccurate: 6, WCETImprecise: 2, Error: task.Dist{Mean: 1}},
	)
	p, err := NewILPOABestEffort(ok)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Sched.Validate(); err != nil {
		t.Errorf("feasible set produced invalid plan: %v", err)
	}
}

func TestBestEffortPropagatesOtherErrors(t *testing.T) {
	// Phase-shifted sets fail with ErrNotZeroRelease, which the best-effort
	// wrapper must NOT swallow.
	s := mkSet(t, task.Task{Name: "a", Period: 10, Release: 3,
		WCETAccurate: 5, WCETImprecise: 2})
	if _, err := NewILPOABestEffort(s); !errors.Is(err, ErrNotZeroRelease) {
		t.Errorf("err = %v, want ErrNotZeroRelease", err)
	}
	if _, err := NewFlippedEDFBestEffort(s); !errors.Is(err, ErrNotZeroRelease) {
		t.Errorf("flipped err = %v, want ErrNotZeroRelease", err)
	}
}

func TestScheduleString(t *testing.T) {
	s := twoJobSet(t)
	sc, err := BuildILPSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	out := sc.String()
	if !strings.Contains(out, "offline schedule") || !strings.Contains(out, "[") {
		t.Errorf("String = %q", out)
	}
}

func TestScheduleWithModesLengthMismatch(t *testing.T) {
	s := twoJobSet(t)
	order, _ := EDFOrder(s, task.Imprecise)
	if _, err := ScheduleWithModes(s, order, nil); err == nil {
		t.Error("length mismatch accepted")
	}
}
