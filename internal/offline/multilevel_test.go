package offline

import (
	"math"
	"testing"

	"nprt/internal/esr"
	"nprt/internal/sim"
	"nprt/internal/task"
	"nprt/internal/trace"
)

// multiLevelSet declares three accuracy levels per task (the §II-C
// generalization): accurate, imprecise, and a deeper "rough" level.
func multiLevelSet(t *testing.T) *task.Set {
	t.Helper()
	s, err := task.New([]task.Task{
		{
			Name: "a", Period: 20, WCETAccurate: 14, WCETImprecise: 8,
			Error:       task.Dist{Mean: 2},
			ExtraLevels: []task.Level{{WCET: 3, Error: task.Dist{Mean: 6}}},
		},
		{
			Name: "b", Period: 40, WCETAccurate: 20, WCETImprecise: 10,
			Error:       task.Dist{Mean: 3},
			ExtraLevels: []task.Level{{WCET: 4, Error: task.Dist{Mean: 9}}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMultiLevelTaskModel(t *testing.T) {
	s := multiLevelSet(t)
	tk := s.Task(0)
	if tk.NumModes() != 3 {
		t.Fatalf("NumModes = %d", tk.NumModes())
	}
	if tk.WCET(task.Mode(2)) != 3 || tk.WCET(task.Deepest) != 3 {
		t.Errorf("level-2 WCET lookup wrong: %d/%d", tk.WCET(task.Mode(2)), tk.WCET(task.Deepest))
	}
	if tk.ErrorDist(task.Mode(2)).Mean != 6 {
		t.Errorf("level-2 error lookup wrong")
	}
	if tk.ClampMode(task.Mode(9)) != task.Mode(2) {
		t.Errorf("clamp wrong: %v", tk.ClampMode(task.Mode(9)))
	}
	// Validation: a level must strictly undercut the previous WCET.
	bad := *tk
	bad.ExtraLevels = []task.Level{{WCET: 8}}
	if err := bad.Validate(); err == nil {
		t.Error("non-decreasing extra level accepted")
	}
	bad.ExtraLevels = []task.Level{{WCET: 3, Error: task.Dist{Mean: -1}}}
	if err := bad.Validate(); err == nil {
		t.Error("negative level error accepted")
	}
}

// The deepest levels make the set feasible where two-level imprecision
// would not be: Σ x/p = 8/20 + 10/40 = 0.65, but accurate is 1.2 and the
// deepest is 3/20 + 4/40 = 0.25.
func TestMultiLevelOptimizeModesUsesMiddleLevels(t *testing.T) {
	s := multiLevelSet(t)
	order, err := EDFOrder(s, task.Deepest)
	if err != nil {
		t.Fatal(err)
	}
	modes, errSum, err := OptimizeModes(s, order)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := ScheduleWithModes(s, order, modes)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	// Brute force over 3 levels per job for the optimum.
	want := bruteForceOptimumMulti(s, order)
	if math.Abs(errSum-want) > 1e-9 {
		t.Errorf("multi-level DP = %g, brute force = %g", errSum, want)
	}
}

func bruteForceOptimumMulti(s *task.Set, order []task.Job) float64 {
	m := len(order)
	best := math.Inf(1)
	var walk func(k int, t task.Time, err float64)
	walk = func(k int, t task.Time, err float64) {
		if err >= best {
			return
		}
		if k == m {
			best = err
			return
		}
		j := order[k]
		tk := s.Task(j.TaskID)
		start := t
		if j.Release > start {
			start = j.Release
		}
		for mode := task.Accurate; int(mode) < tk.NumModes(); mode++ {
			f := start + tk.WCET(mode)
			if f <= j.Deadline {
				walk(k+1, f, err+tk.ErrorDist(mode).Mean)
			}
		}
	}
	walk(0, 0, 0)
	return best
}

func TestMultiLevelESRPicksIntermediateLevels(t *testing.T) {
	s := multiLevelSet(t)
	p := esr.New()
	res, err := sim.Run(s, p, sim.Config{Hyperperiods: 100, TraceLimit: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses.Events != 0 {
		t.Fatalf("%d misses", res.Misses.Events)
	}
	vs := trace.Validate(res.Trace, trace.Options{RequireDeadlines: true, WCETBounds: true, Set: s})
	if len(vs) != 0 {
		t.Fatalf("violations: %v", vs[0])
	}
	// Count levels actually used.
	levels := map[task.Mode]int{}
	for _, e := range res.Trace.Entries {
		levels[e.Mode]++
	}
	// With WCET execution the slack is moderate: the middle level should
	// appear (slack covers x−deepest but not w−deepest for some jobs).
	if levels[task.Imprecise] == 0 && levels[task.Accurate] == 0 {
		t.Errorf("ESR never rose above the deepest level: %v", levels)
	}
}

func TestMultiLevelFlippedEDFUsesDeepest(t *testing.T) {
	s := multiLevelSet(t)
	sc, err := FlippedEDF(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, sj := range sc.Jobs {
		if sj.Mode != task.Mode(2) {
			t.Errorf("flipped EDF planned %v, want deepest level", sj.Mode)
		}
	}
}

func TestMultiLevelOAUpgradesStepwise(t *testing.T) {
	s := multiLevelSet(t)
	p, err := NewILPPostOA(s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(s, p, sim.Config{
		Hyperperiods: 200,
		Sampler:      sim.NewRandomSampler(s, 5),
		TraceLimit:   -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses.Events != 0 {
		t.Fatalf("%d misses", res.Misses.Events)
	}
	vs := trace.Validate(res.Trace, trace.Options{RequireDeadlines: true, WCETBounds: true, Set: s})
	if len(vs) != 0 {
		t.Fatalf("violations: %v", vs[0])
	}
}

func TestBestModeSelection(t *testing.T) {
	s := multiLevelSet(t)
	tk := s.Task(0)  // w=14, x=8, deepest=3
	j := s.Job(0, 0) // deadline 20
	cases := []struct {
		slack task.Time
		now   task.Time
		want  task.Mode
	}{
		{0, 0, task.Mode(2)},        // no slack → deepest
		{4, 0, task.Mode(2)},        // below x−deepest = 5
		{5, 0, task.Imprecise},      // covers the middle gap
		{10, 0, task.Imprecise},     // below w−deepest = 11
		{11, 0, task.Accurate},      // full upgrade
		{1 << 30, 0, task.Accurate}, // plenty
		// Deadline guard: with now=10 the accurate WCET (14) cannot finish
		// by d=20 no matter how much slack was reclaimed.
		{1 << 30, 10, task.Imprecise},
		// now=15: even the imprecise level (8) would overrun; deepest fits.
		{1 << 30, 15, task.Mode(2)},
	}
	for _, c := range cases {
		if got := esr.BestMode(tk, j, c.now, c.slack); got != c.want {
			t.Errorf("BestMode(now=%d, slack=%d) = %v, want %v", c.now, c.slack, got, c.want)
		}
	}
}
