package offline

import (
	"errors"
	"fmt"

	"nprt/internal/sim"
	"nprt/internal/task"
)

// OAPolicy executes an offline hyper-period schedule with the paper's
// online adjustment (§IV-A, shared by ILP+OA, ILP+Post+OA and Flipped EDF):
//
//   - the execution order is fixed to the offline order and repeats every
//     hyper-period;
//   - a job starts as soon as the processor is free and the job released —
//     it never waits for its offline start time;
//   - a planned-imprecise job (y=1) is upgraded to accurate if and only if
//     t_cur + w_i ≤ f̂_{i,j}, the offline finish time; planned-accurate jobs
//     always run accurate.
//
// The adjustment is O(1) per dispatch.
type OAPolicy struct {
	Label string
	Sched *Schedule
	// DisableUpgrade turns the online adjustment off (offline plan followed
	// verbatim); used by ablation benches.
	DisableUpgrade bool

	pos      int       // next entry in Sched.Jobs
	cycle    int64     // completed hyper-periods
	Upgrades int64     // planned-imprecise jobs run accurate
	hyper    task.Time // cached hyper-period
	// dropped holds releases lost to fault injection that the offline order
	// has not yet stepped past (lazily allocated; nil in fault-free runs).
	dropped map[task.JobKey]bool
}

// NewOA wraps an offline schedule in the online-adjustment policy.
func NewOA(label string, sc *Schedule) *OAPolicy {
	return &OAPolicy{Label: label, Sched: sc}
}

// Name implements sim.Policy.
func (p *OAPolicy) Name() string { return p.Label }

// ValidateFor implements sim.Validator: a schedule built for a different
// job population cannot drive the set, and sim.Run reports this as a
// structured error before the run starts (it used to be a Reset panic).
func (p *OAPolicy) ValidateFor(s *task.Set) error {
	if s != p.Sched.Set && s.JobsPerHyperperiod() != len(p.Sched.Jobs) {
		return fmt.Errorf("offline: schedule for %d jobs driven against set with %d",
			len(p.Sched.Jobs), s.JobsPerHyperperiod())
	}
	return nil
}

// Reset implements sim.Policy.
func (p *OAPolicy) Reset(st *sim.State) {
	p.pos = 0
	p.cycle = 0
	p.Upgrades = 0
	p.hyper = st.Set().Hyperperiod()
	p.dropped = nil
}

// JobDropped implements sim.DropAware: a release lost to fault injection is
// remembered so the offline cursor steps past it instead of committing to a
// job that will never arrive.
func (p *OAPolicy) JobDropped(_ *sim.State, j task.Job) {
	if p.dropped == nil {
		p.dropped = make(map[task.JobKey]bool)
	}
	p.dropped[j.Key()] = true
}

// cursorJob materializes the offline entry at the current cursor, shifted
// into the current hyper-period.
func (p *OAPolicy) cursorJob(st *sim.State) (ScheduledJob, task.Job) {
	sj := p.Sched.Jobs[p.pos]
	offset := p.cycle * p.hyper
	return sj, task.Job{
		TaskID:   sj.Job.TaskID,
		Index:    sj.Job.Index + int(p.cycle)*st.JobsPerHyperperiod(sj.Job.TaskID),
		Release:  sj.Job.Release + offset,
		Deadline: sj.Job.Deadline + offset,
	}
}

// Pick returns the next job of the offline order, shifted into the current
// hyper-period, with the online accuracy upgrade applied.
func (p *OAPolicy) Pick(st *sim.State) (sim.Decision, bool) {
	if p.pos >= len(p.Sched.Jobs) {
		// Wrap to the next hyper-period.
		p.pos = 0
		p.cycle++
	}
	sj, job := p.cursorJob(st)
	for p.dropped[job.Key()] {
		// The release was lost to fault injection: skip the slot.
		delete(p.dropped, job.Key())
		p.pos++
		if p.pos >= len(p.Sched.Jobs) {
			p.pos = 0
			p.cycle++
		}
		sj, job = p.cursorJob(st)
	}
	offset := p.cycle * p.hyper
	if job.Deadline > st.Horizon() {
		// Past the simulated window: nothing more to schedule.
		return sim.Decision{}, false
	}

	mode := sj.Mode
	if mode != task.Accurate && !p.DisableUpgrade {
		tCur := st.Now()
		if job.Release > tCur {
			tCur = job.Release
		}
		tk := st.Set().Task(job.TaskID)
		// Upgrade to the most accurate level that still finishes by the
		// offline f̂ under its WCET (the paper's t_cur + w ≤ f̂ rule,
		// generalized over the declared levels).
		for m := task.Accurate; m < mode; m++ {
			if tCur+tk.WCET(m) <= sj.Finish+offset {
				mode = m
				p.Upgrades++
				break
			}
		}
	}
	return sim.Decision{Job: job, Mode: mode}, true
}

// JobFinished advances the offline cursor.
func (p *OAPolicy) JobFinished(*sim.State, sim.Decision, task.Time, task.Time) {
	p.pos++
}

// NewILPOA builds the §IV-A method: exact order-fixed mode optimization
// plus online adjustment.
func NewILPOA(s *task.Set) (*OAPolicy, error) {
	sc, err := BuildILPSchedule(s)
	if err != nil {
		return nil, err
	}
	return NewOA("ILP+OA", sc), nil
}

// NewILPPostOA builds the §IV-B method: the ILP schedule post-processed by
// the three rewrites, plus online adjustment.
func NewILPPostOA(s *task.Set) (*OAPolicy, error) {
	sc, err := BuildILPSchedule(s)
	if err != nil {
		return nil, err
	}
	post, _ := PostProcess(sc, PostProcessOptions{})
	if err := post.Validate(); err != nil {
		return nil, fmt.Errorf("offline: post-processing produced invalid schedule: %w", err)
	}
	return NewOA("ILP+Post+OA", post), nil
}

// NewFlippedEDF builds the §IV-C method: reverse-time EDF (all imprecise,
// as late as possible) plus online adjustment.
func NewFlippedEDF(s *task.Set) (*OAPolicy, error) {
	sc, err := FlippedEDF(s)
	if err != nil {
		return nil, err
	}
	return NewOA("Flipped EDF", sc), nil
}

// bestEffort falls back to the all-imprecise ASAP plan when a proper
// offline build is infeasible, keeping the method's label.
func bestEffort(s *task.Set, label string, err error) (*OAPolicy, error) {
	if !errorsIsInfeasible(err) {
		return nil, err
	}
	sc, bErr := BuildBestEffort(s)
	if bErr != nil {
		return nil, bErr
	}
	return NewOA(label, sc), nil
}

func errorsIsInfeasible(err error) bool { return errors.Is(err, ErrInfeasible) }

// NewILPOABestEffort is NewILPOA with the best-effort fallback for sets
// that fail imprecise-mode feasibility (the experiment harness uses this so
// every Table I case produces a row, as in the paper).
func NewILPOABestEffort(s *task.Set) (*OAPolicy, error) {
	p, err := NewILPOA(s)
	if err != nil {
		return bestEffort(s, "ILP+OA", err)
	}
	return p, nil
}

// NewILPPostOABestEffort is NewILPPostOA with the best-effort fallback
// (post-processing is still applied to the fallback plan; its rewrites are
// deadline-guarded and simply fire less).
func NewILPPostOABestEffort(s *task.Set) (*OAPolicy, error) {
	p, err := NewILPPostOA(s)
	if err == nil {
		return p, nil
	}
	if !errorsIsInfeasible(err) {
		return nil, err
	}
	sc, bErr := BuildBestEffort(s)
	if bErr != nil {
		return nil, bErr
	}
	post, _ := PostProcess(sc, PostProcessOptions{})
	return NewOA("ILP+Post+OA", post), nil
}

// NewFlippedEDFBestEffort is NewFlippedEDF with the best-effort fallback.
func NewFlippedEDFBestEffort(s *task.Set) (*OAPolicy, error) {
	p, err := NewFlippedEDF(s)
	if err != nil {
		return bestEffort(s, "Flipped EDF", err)
	}
	return p, nil
}
