package offline

import (
	"math"
	"sort"

	"nprt/internal/task"
)

// OptimizeModes solves the order-fixed offline problem exactly: given the
// job order (normally EDFOrder in imprecise mode), choose each job's mode to
// minimize the total pre-characterized error Σ e_i·y_{i,j} subject to ASAP
// chain feasibility — the same model as the §IV-A ILP with the execution
// order fixed. It runs a dynamic program over Pareto-optimal
// (finish time, error) states and is exact: internal/offline tests
// cross-check it against the branch-and-bound MILP.
//
// Returned modes are parallel to order. ErrInfeasible is returned when even
// the all-imprecise assignment misses a deadline.
func OptimizeModes(s *task.Set, order []task.Job) ([]task.Mode, float64, error) {
	type state struct {
		finish task.Time
		err    float64
		parent int32 // index into previous level
		mode   task.Mode
	}
	levels := make([][]state, len(order)+1)
	levels[0] = []state{{finish: 0, err: 0, parent: -1}}

	for k, j := range order {
		tk := s.Task(j.TaskID)
		prev := levels[k]
		next := make([]state, 0, 2*len(prev))
		for pi, ps := range prev {
			start := ps.finish
			if j.Release > start {
				start = j.Release
			}
			// One branch per declared accuracy level (two in the paper's
			// standard model).
			for m := task.Accurate; int(m) < tk.NumModes(); m++ {
				if f := start + tk.WCET(m); f <= j.Deadline {
					next = append(next, state{
						finish: f,
						err:    ps.err + tk.ErrorDist(m).Mean,
						parent: int32(pi),
						mode:   m,
					})
				}
			}
		}
		if len(next) == 0 {
			return nil, 0, ErrInfeasible
		}
		// Pareto prune: sort by finish asc then err asc; keep states whose
		// error strictly improves on every earlier (smaller-finish) state.
		sort.Slice(next, func(a, b int) bool {
			if next[a].finish != next[b].finish {
				return next[a].finish < next[b].finish
			}
			return next[a].err < next[b].err
		})
		pruned := next[:0]
		bestErr := math.Inf(1)
		for _, st := range next {
			if st.err < bestErr-1e-12 {
				pruned = append(pruned, st)
				bestErr = st.err
			}
		}
		levels[k+1] = append([]state(nil), pruned...)
	}

	// Best terminal state = minimum error (ties: earliest finish, which the
	// Pareto front orders first).
	last := levels[len(order)]
	best := 0
	for i := 1; i < len(last); i++ {
		if last[i].err < last[best].err-1e-12 {
			best = i
		}
	}

	modes := make([]task.Mode, len(order))
	idx := int32(best)
	for k := len(order); k >= 1; k-- {
		st := levels[k][idx]
		modes[k-1] = st.mode
		idx = st.parent
	}
	return modes, last[best].err, nil
}

// BuildILPSchedule runs the §IV-A pipeline: fix the EDF order (imprecise
// WCETs), optimize the mode assignment exactly, and lay the result out at
// ASAP starts. The resulting schedule's Start/Finish columns are the s and
// f̂ values the online adjustment compares against.
func BuildILPSchedule(s *task.Set) (*Schedule, error) {
	order, err := EDFOrder(s, task.Deepest)
	if err != nil {
		return nil, err
	}
	modes, _, err := OptimizeModes(s, order)
	if err != nil {
		return nil, err
	}
	return ScheduleWithModes(s, order, modes)
}

// BuildBestEffort lays out the EDF order with every job imprecise at ASAP
// starts without deadline validation. It is the fallback plan for sets that
// fail even the imprecise-mode feasibility (Rnd2- and IDCT-class cases in
// Table I): the paper's methods still run on such sets, best-effort — the
// WCET plan overruns deadlines on paper, but actual execution times are far
// below WCET and the online adjustment still applies.
func BuildBestEffort(s *task.Set) (*Schedule, error) {
	order, err := EDFOrder(s, task.Deepest)
	if err != nil {
		return nil, err
	}
	sc := &Schedule{Set: s, Jobs: make([]ScheduledJob, len(order))}
	var t task.Time
	for k, j := range order {
		start := j.Release
		if t > start {
			start = t
		}
		tk := s.Task(j.TaskID)
		mode := tk.ClampMode(task.Deepest)
		x := tk.WCET(mode)
		sc.Jobs[k] = ScheduledJob{Job: j, Mode: mode, Start: start, Finish: start + x}
		t = start + x
	}
	return sc, nil
}
