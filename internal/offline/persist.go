package offline

import (
	"encoding/json"
	"fmt"
	"io"

	"nprt/internal/task"
)

// Plan persistence: an offline schedule is exactly the kind of artifact a
// deployment computes once on a host and ships to the target (the paper's
// ILP runs "seconds to minutes" — offline). The JSON form carries only the
// plan, not the task set; loading validates the plan against the set it
// will drive, so a stale table for a changed set is rejected instead of
// silently misscheduling.

// planJSON is the serialized form of one scheduled job.
type planJSON struct {
	TaskID int       `json:"task"`
	Index  int       `json:"index"`
	Mode   uint8     `json:"mode"`
	Start  task.Time `json:"start"`
	Finish task.Time `json:"finish"`
}

// scheduleJSON is the file format.
type scheduleJSON struct {
	// Fingerprint guards against pairing a plan with the wrong set: the
	// task count and hyper-period must match at load time.
	Tasks       int        `json:"tasks"`
	Hyperperiod task.Time  `json:"hyperperiod"`
	Jobs        []planJSON `json:"jobs"`
}

// EncodeJSON writes the schedule.
func (sc *Schedule) EncodeJSON(w io.Writer) error {
	out := scheduleJSON{
		Tasks:       sc.Set.Len(),
		Hyperperiod: sc.Set.Hyperperiod(),
		Jobs:        make([]planJSON, len(sc.Jobs)),
	}
	for k, sj := range sc.Jobs {
		out.Jobs[k] = planJSON{
			TaskID: sj.Job.TaskID, Index: sj.Job.Index,
			Mode: uint8(sj.Mode), Start: sj.Start, Finish: sj.Finish,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// DecodeSchedule reads a plan and binds it to the set, validating the
// fingerprint and every schedule invariant. Plans from best-effort builds
// (which legitimately overrun deadlines on paper) fail validation and are
// rejected; persist only guaranteed plans.
func DecodeSchedule(r io.Reader, s *task.Set) (*Schedule, error) {
	var in scheduleJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("offline: decoding plan: %w", err)
	}
	if in.Tasks != s.Len() || in.Hyperperiod != s.Hyperperiod() {
		return nil, fmt.Errorf("offline: plan fingerprint (%d tasks, P=%d) does not match set (%d tasks, P=%d)",
			in.Tasks, in.Hyperperiod, s.Len(), s.Hyperperiod())
	}
	sc := &Schedule{Set: s, Jobs: make([]ScheduledJob, len(in.Jobs))}
	for k, pj := range in.Jobs {
		if pj.TaskID < 0 || pj.TaskID >= s.Len() {
			return nil, fmt.Errorf("offline: plan references task %d of %d", pj.TaskID, s.Len())
		}
		sc.Jobs[k] = ScheduledJob{
			Job:    s.Job(pj.TaskID, pj.Index),
			Mode:   task.Mode(pj.Mode),
			Start:  pj.Start,
			Finish: pj.Finish,
		}
	}
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("offline: loaded plan invalid for this set: %w", err)
	}
	return sc, nil
}
