package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	runtimepkg "nprt/internal/runtime"
	"nprt/internal/task"
)

func batchJSON(t *testing.T, names ...string) []byte {
	t.Helper()
	evs := make([]runtimepkg.Event, 0, len(names))
	for _, name := range names {
		evs = append(evs, runtimepkg.Event{Op: "add", Task: &runtimepkg.TaskSpec{Task: task.Task{
			Name: name, Period: 40, WCETAccurate: 6, WCETImprecise: 2,
			ExecAccurate:  task.Dist{Mean: 3, Sigma: 1, Min: 1, Max: 6},
			ExecImprecise: task.Dist{Mean: 1, Sigma: 0.2, Min: 1, Max: 2},
			Error:         task.Dist{Mean: 2, Sigma: 0.5},
		}}})
	}
	buf, err := json.Marshal(evs)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

type batchResponse struct {
	Decisions []struct {
		Decision runtimepkg.Decision `json:"decision"`
		Error    string              `json:"error,omitempty"`
	} `json:"decisions"`
}

// TestAdmitBatch: one POST carries several events; the response holds one
// decision per event, in order, with per-event errors for the stale ones —
// and the admitted counter counts each batch member exactly once.
func TestAdmitBatch(t *testing.T) {
	s := New(Options{})
	s.Attach(openTestStore(t))
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// b1 duplicates b1: the dup is stale, everything else admits.
	resp, body := post(t, ts.URL+"/admit/batch", batchJSON(t, "b1", "b2", "b1", "b3"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch admit: %d: %s", resp.StatusCode, body)
	}
	var out batchResponse
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Decisions) != 4 {
		t.Fatalf("%d decisions for 4 events: %s", len(out.Decisions), body)
	}
	for i, want := range []struct {
		op    string
		stale bool
	}{{"add", false}, {"add", false}, {"add", true}, {"add", false}} {
		d := out.Decisions[i]
		if d.Decision.Op != want.op {
			t.Errorf("decision %d op %q, want %q — order not preserved", i, d.Decision.Op, want.op)
		}
		if want.stale && d.Error == "" {
			t.Errorf("decision %d: duplicate add has no error: %s", i, body)
		}
		if !want.stale && (d.Error != "" || d.Decision.Verdict == runtimepkg.Rejected) {
			t.Errorf("decision %d rejected: %+v %q", i, d.Decision, d.Error)
		}
	}

	snap := s.Snapshot()
	if snap.Admitted != 3 || snap.Rejected != 1 {
		t.Errorf("counters admitted=%d rejected=%d, want 3 and 1 — batch members double-counted?", snap.Admitted, snap.Rejected)
	}
	if snap.Tasks != 3 || snap.EventsApplied != 4 {
		t.Errorf("tasks=%d events=%d, want 3 and 4", snap.Tasks, snap.EventsApplied)
	}
	if snap.Commit == nil || snap.Commit.Records < 4 {
		t.Errorf("state missing commit stats: %+v", snap.Commit)
	}

	// An empty array is a no-op, not an error.
	resp, body = post(t, ts.URL+"/admit/batch", []byte(`[]`))
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"decisions": []`) && !strings.Contains(body, `"decisions":[]`) {
		t.Errorf("empty batch: %d %s", resp.StatusCode, body)
	}

	// Over the event cap: rejected outright, nothing journaled.
	before := s.Snapshot().EventsApplied
	var many []runtimepkg.Event
	for i := 0; i <= s.opt.MaxBatchEvents; i++ {
		many = append(many, runtimepkg.Event{Op: "remove", Name: "x"})
	}
	buf, _ := json.Marshal(many)
	resp, body = post(t, ts.URL+"/admit/batch", buf)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch: %d, want 400: %s", resp.StatusCode, body)
	}
	if got := s.Snapshot().EventsApplied; got != before {
		t.Errorf("oversized batch advanced the journal: %d → %d", before, got)
	}

	// Malformed batch bodies.
	for _, bad := range []string{`{"op": "add"}`, `[{"typo": 1}]`, `not json`} {
		resp, _ := post(t, ts.URL+"/admit/batch", []byte(bad))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("batch %q: %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestAdmitSaturatedTimeout: when the engine cannot reply within the
// request timeout, the client is shed with the standard 503 + Retry-After
// contract — not a generic error — and the shed counter ticks.
func TestAdmitSaturatedTimeout(t *testing.T) {
	s := New(Options{QueueDepth: 8, RequestTimeout: 50 * time.Millisecond, RetryAfter: 2 * time.Second})
	st := openTestStore(t)
	// Ready with no engine: accepted admissions park in the queue forever,
	// emulating an engine wedged mid-epoch.
	s.store = st
	s.ready.Store(true)
	s.publish("")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := post(t, ts.URL+"/admit", addEventJSON(t, "slow"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated admit: %d, want 503: %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After %q, want %q", ra, "2")
	}
	if !strings.Contains(body, "saturated") {
		t.Errorf("shed body should name the condition: %s", body)
	}
	if s.shed.Load() != 1 {
		t.Errorf("shed counter %d, want 1", s.shed.Load())
	}

	resp, body = post(t, ts.URL+"/admit/batch", batchJSON(t, "s1", "s2"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated batch admit: %d, want 503: %s", resp.StatusCode, body)
	}
	if s.shed.Load() != 2 {
		t.Errorf("shed counter %d, want 2", s.shed.Load())
	}

	// The accepted tickets are still queued: start the engine and drain —
	// they must be applied exactly once (durable despite the shed reply).
	go s.engine()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := st.EventsApplied(); got != 3 {
		t.Errorf("store applied %d events after drain, want 3", got)
	}
}
