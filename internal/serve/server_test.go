package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	runtimepkg "nprt/internal/runtime"
	"nprt/internal/task"
)

func openTestStore(t *testing.T) *runtimepkg.Store {
	t.Helper()
	st, err := runtimepkg.OpenStore(t.TempDir(), runtimepkg.StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func addEventJSON(t *testing.T, name string) []byte {
	t.Helper()
	w := task.Time(6)
	ev := runtimepkg.Event{Op: "add", Task: &runtimepkg.TaskSpec{Task: task.Task{
		Name: name, Period: 40, WCETAccurate: w, WCETImprecise: 2,
		ExecAccurate:  task.Dist{Mean: 3, Sigma: 1, Min: 1, Max: 6},
		ExecImprecise: task.Dist{Mean: 1, Sigma: 0.2, Min: 1, Max: 2},
		Error:         task.Dist{Mean: 2, Sigma: 0.5},
	}}}
	buf, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, string(body)
}

func post(t *testing.T, url string, body []byte) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, string(b)
}

// TestReadyzGatesOnAttach is the readiness contract: alive from the first
// byte, ready only between Attach (replay done) and Shutdown.
func TestReadyzGatesOnAttach(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if resp, _ := get(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before attach: %d", resp.StatusCode)
	}
	resp, _ := get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz before attach: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("readyz 503 missing Retry-After")
	}
	// Admissions are shed, not queued, while unready.
	if resp, _ := post(t, ts.URL+"/admit", addEventJSON(t, "a")); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("admit before attach: %d, want 503", resp.StatusCode)
	}

	s.Attach(openTestStore(t))
	if resp, _ := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after attach: %d, want 200", resp.StatusCode)
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if resp, _ := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after shutdown: %d, want 503", resp.StatusCode)
	}
	if resp, _ := post(t, ts.URL+"/admit", addEventJSON(t, "a")); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("admit after shutdown: %d, want 503", resp.StatusCode)
	}
}

func TestAdmitDecisions(t *testing.T) {
	s := New(Options{})
	s.Attach(openTestStore(t))
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := post(t, ts.URL+"/admit", addEventJSON(t, "a"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admit a: %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Decision runtimepkg.Decision `json:"decision"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if out.Decision.Verdict == runtimepkg.Rejected {
		t.Fatalf("admit a rejected: %s", body)
	}

	// Duplicate add: stale, 409 with the decision and error attached.
	resp, body = post(t, ts.URL+"/admit", addEventJSON(t, "a"))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate admit: %d, want 409: %s", resp.StatusCode, body)
	}

	// Structural garbage never reaches the journal.
	for _, bad := range []string{
		`{"op": "frobnicate"}`,
		`{"op": "add"}`,
		`{"op": "add", "typo": 1}`,
		`not json`,
	} {
		resp, _ := post(t, ts.URL+"/admit", []byte(bad))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("admit %q: %d, want 400", bad, resp.StatusCode)
		}
	}

	resp, body = get(t, ts.URL+"/state")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("state: %d", resp.StatusCode)
	}
	var st State
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if !st.Ready || st.Tasks != 1 || st.Admitted != 1 || st.Rejected != 1 {
		t.Errorf("state after admits: %+v", st)
	}
	if st.Digest == "" || st.EventsApplied != 2 {
		t.Errorf("state cursor: digest %q, events %d", st.Digest, st.EventsApplied)
	}
}

// TestLoadShedAndDrain fills the bounded queue with the engine stalled,
// verifies the overflow admission is shed with 503 + Retry-After, then
// starts the engine and drains: every accepted admission must be applied
// (zero accepted-then-dropped), and the shed one must NOT be.
func TestLoadShedAndDrain(t *testing.T) {
	s := New(Options{QueueDepth: 2, RequestTimeout: 10 * time.Second, RetryAfter: 3 * time.Second})
	st := openTestStore(t)
	// White-box attach without the engine: ready, but nothing drains the
	// queue, emulating an engine stalled mid-epoch.
	s.store = st
	s.ready.Store(true)
	s.publish("")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type result struct {
		status int
		body   string
	}
	results := make(chan result, 2)
	var wg sync.WaitGroup
	for _, name := range []string{"q1", "q2"} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			resp, body := post(t, ts.URL+"/admit", addEventJSON(t, name))
			results <- result{resp.StatusCode, body}
		}(name)
	}
	// Wait until both admissions are parked in the queue.
	deadline := time.Now().Add(5 * time.Second)
	for len(s.queue) != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: depth %d", len(s.queue))
		}
		time.Sleep(time.Millisecond)
	}

	resp, body := post(t, ts.URL+"/admit", addEventJSON(t, "overflow"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow admit: %d, want 503: %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After %q, want %q", ra, "3")
	}
	if !strings.Contains(body, "queue full") {
		t.Errorf("shed body: %s", body)
	}

	// Unstall the engine, then immediately drain.
	go s.engine()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(results)
	for r := range results {
		if r.status != http.StatusOK {
			t.Errorf("queued admit got %d: %s", r.status, r.body)
		}
	}
	// Both accepted admissions applied; the shed one never touched the
	// store or the journal.
	if got := st.EventsApplied(); got != 2 {
		t.Errorf("store applied %d events, want exactly the 2 accepted", got)
	}
	if s.shed.Load() != 1 {
		t.Errorf("shed counter %d, want 1", s.shed.Load())
	}
}

// TestEngineRunsEpochsAndCheckpoints covers the timed-epoch path.
func TestEngineRunsEpochsAndCheckpoints(t *testing.T) {
	s := New(Options{EpochInterval: time.Millisecond, CheckpointEvery: 2})
	st := openTestStore(t)
	s.Attach(st)

	deadline := time.Now().Add(5 * time.Second)
	for s.Snapshot().Epoch < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("engine stuck at epoch %d", s.Snapshot().Epoch)
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap.Epoch < 4 || snap.Digest == "" {
		t.Errorf("snapshot after epochs: %+v", snap)
	}
	if snap.Ready || !snap.Draining {
		t.Errorf("snapshot flags after shutdown: ready=%v draining=%v", snap.Ready, snap.Draining)
	}
}

func TestSupervisorRestartsThenSucceeds(t *testing.T) {
	var delays []time.Duration
	fails := 0
	sup := &Supervisor{
		MaxRestarts: 5,
		BackoffBase: 100 * time.Millisecond,
		BackoffCap:  400 * time.Millisecond,
		Sleep:       func(ctx context.Context, d time.Duration) { delays = append(delays, d) },
	}
	err := sup.Run(context.Background(), func(ctx context.Context) error {
		fails++
		switch fails {
		case 1:
			panic("incarnation 1 dies")
		case 2:
			return fmt.Errorf("incarnation 2 fails")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("supervisor gave up: %v", err)
	}
	if fails != 3 || len(delays) != 2 {
		t.Fatalf("%d runs, %d backoffs; want 3 and 2", fails, len(delays))
	}
	// Jittered exponential backoff: delay n lands in [base<<n / 2, base<<n * 1.5).
	for i, d := range delays {
		lo := (100 * time.Millisecond << i) / 2
		hi := 3 * lo
		if d < lo || d >= hi {
			t.Errorf("backoff %d = %v, want in [%v, %v)", i, d, lo, hi)
		}
	}
}

func TestSupervisorBudgetExhausted(t *testing.T) {
	runs := 0
	sup := &Supervisor{
		MaxRestarts: 2,
		Sleep:       func(ctx context.Context, d time.Duration) {},
	}
	err := sup.Run(context.Background(), func(ctx context.Context) error {
		runs++
		return fmt.Errorf("always broken")
	})
	if err == nil || !strings.Contains(err.Error(), "restart budget") {
		t.Fatalf("err %v, want restart-budget error", err)
	}
	if runs != 3 { // first run + 2 restarts
		t.Fatalf("%d runs, want 3", runs)
	}
}

func TestSupervisorResetAfterForgivesStableUptime(t *testing.T) {
	// A fake clock advanced by the supervised function itself: every third
	// incarnation "stays up" past the reset window before crashing, which
	// must zero the attempt counter — so the run survives far more total
	// failures than MaxRestarts before the budget finally bites.
	var clock time.Time
	runs := 0
	sup := &Supervisor{
		MaxRestarts: 2,
		ResetAfter:  time.Minute,
		Now:         func() time.Time { return clock },
		Sleep:       func(ctx context.Context, d time.Duration) {},
	}
	err := sup.Run(context.Background(), func(ctx context.Context) error {
		runs++
		if runs%3 == 0 {
			clock = clock.Add(2 * time.Minute) // stable incarnation, then crash
		} else {
			clock = clock.Add(time.Second) // quick crash
		}
		return fmt.Errorf("incarnation %d dies", runs)
	})
	if err == nil || !strings.Contains(err.Error(), "restart budget") {
		t.Fatalf("err %v, want restart-budget error", err)
	}
	// A strict budget of 2 allows 3 runs. Here run 3 is stable and resets
	// the counter, buying a fresh budget: runs 4 and 5 are attempts 1 and
	// 2 of the new window, and run 5 exhausts it — two more total failures
	// than the strict budget would have survived.
	if runs != 5 {
		t.Fatalf("budget bit after %d runs, want 5 (one stable-uptime reset)", runs)
	}

	// Same shape without ResetAfter: the budget is strict.
	clock = time.Time{}
	runs = 0
	strict := &Supervisor{
		MaxRestarts: 2,
		Now:         func() time.Time { return clock },
		Sleep:       func(ctx context.Context, d time.Duration) {},
	}
	err = strict.Run(context.Background(), func(ctx context.Context) error {
		runs++
		clock = clock.Add(2 * time.Minute)
		return fmt.Errorf("incarnation %d dies", runs)
	})
	if err == nil || runs != 3 {
		t.Fatalf("strict budget: %d runs, err %v; want 3 runs and budget error", runs, err)
	}
}

func TestSupervisorHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	sup := &Supervisor{
		MaxRestarts: 100,
		Sleep:       func(ctx context.Context, d time.Duration) { cancel() },
	}
	err := sup.Run(ctx, func(ctx context.Context) error {
		return fmt.Errorf("fails until cancelled")
	})
	if err != context.Canceled {
		t.Fatalf("err %v, want context.Canceled", err)
	}
}
