// Zero-allocation Event decoding for the /admit hot path.
//
// encoding/json cannot decode an Event without allocating: every string
// field, the nested TaskSpec, and the decoder's own state go through the
// heap. At ingest rates the decode alloc rate becomes GC pressure that
// competes with the engine. This file is a hand-rolled, pooled decoder
// for exactly the Event schema:
//
//   - the request body is read into a reused buffer,
//   - the Event/TaskSpec/OverloadSpec targets are scratch structs owned
//     by the decoder (the admit handler hands them to the engine and only
//     recycles the decoder after the engine's reply),
//   - task/op names are interned in a bounded map — the no-alloc
//     map[string(bytes)] lookup makes repeated names free,
//   - numbers parse with an exact fast path (mantissa < 2^53, |exp10| ≤ 22
//     multiplies/divides by an exactly-representable power of ten, which
//     is correctly rounded); the rare hard cases fall back to
//     strconv.ParseFloat.
//
// Steady state on the hot path (known names, no ExtraLevels): 0 allocs/op,
// enforced by testing.AllocsPerRun in decode_test.go.
//
// Semantics follow the existing encoding/json handler: unknown fields are
// rejected (DisallowUnknownFields), field names match ASCII
// case-insensitively, null leaves the zero value, duplicate keys take the
// last value. It is stricter about number syntax only where JSON itself is
// (leading zeros, bare '.').
package serve

import (
	"fmt"
	"io"
	"strconv"
	"sync"
	"unicode/utf16"
	"unicode/utf8"

	runtimepkg "nprt/internal/runtime"
	"nprt/internal/task"
)

// maxInterned bounds the name-interning map so a hostile client cannot
// grow it without limit; past the cap, unseen names simply allocate.
const maxInterned = 4096

type eventDecoder struct {
	buf     []byte // request-body scratch, reused across requests
	data    []byte // the bytes being parsed
	pos     int
	scratch []byte // string-unescape scratch

	one    []runtimepkg.Event // len 1; one[0] is the scratch Event
	spec   runtimepkg.TaskSpec
	over   runtimepkg.OverloadSpec
	levels []task.Level

	names map[string]string
}

var decoderPool = sync.Pool{New: func() any {
	d := &eventDecoder{
		one:   make([]runtimepkg.Event, 1),
		names: make(map[string]string, 64),
	}
	// The op names every request carries.
	for _, s := range []string{"add", "remove", "overload"} {
		d.names[s] = s
	}
	return d
}}

func getDecoder() *eventDecoder  { return decoderPool.Get().(*eventDecoder) }
func putDecoder(d *eventDecoder) { decoderPool.Put(d) }

// Decoder is the pooled zero-allocation Event decoder, exported for the
// sharded router (internal/cluster), which shares the /admit hot path. Get
// a decoder per request, Decode, and Put it back only after the engine is
// done with the returned scratch events.
type Decoder = eventDecoder

// GetDecoder takes a pooled decoder.
func GetDecoder() *Decoder { return getDecoder() }

// PutDecoder recycles a decoder taken with GetDecoder.
func PutDecoder(d *Decoder) { putDecoder(d) }

// Decode reads r to EOF and parses one Event. The returned slice is the
// decoder's scratch (always length 1): valid until the decoder is reused,
// so put the decoder back only after the engine is done with the event.
func (d *eventDecoder) Decode(r io.Reader) ([]runtimepkg.Event, error) {
	if err := d.readAll(r); err != nil {
		return nil, err
	}
	return d.decodeBytes(d.buf)
}

// decodeBytes parses one Event from b (which the decoder aliases — the
// caller must keep b alive and unchanged as long as the Event is in use).
func (d *eventDecoder) decodeBytes(b []byte) ([]runtimepkg.Event, error) {
	d.data, d.pos = b, 0
	d.one[0] = runtimepkg.Event{}
	d.spec = runtimepkg.TaskSpec{}
	d.over = runtimepkg.OverloadSpec{}
	if err := d.parseEvent(&d.one[0]); err != nil {
		return nil, err
	}
	d.skipWS()
	if d.pos != len(d.data) {
		return nil, d.syntaxErr("trailing data after event")
	}
	return d.one, nil
}

// readAll slurps r into the reused body buffer.
func (d *eventDecoder) readAll(r io.Reader) error {
	if cap(d.buf) == 0 {
		d.buf = make([]byte, 0, 4096)
	}
	d.buf = d.buf[:0]
	for {
		if len(d.buf) == cap(d.buf) {
			nb := make([]byte, len(d.buf), 2*cap(d.buf))
			copy(nb, d.buf)
			d.buf = nb
		}
		n, err := r.Read(d.buf[len(d.buf):cap(d.buf)])
		d.buf = d.buf[:len(d.buf)+n]
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

func (d *eventDecoder) syntaxErr(format string, args ...any) error {
	return fmt.Errorf("json offset %d: %s", d.pos, fmt.Sprintf(format, args...))
}

func (d *eventDecoder) skipWS() {
	for d.pos < len(d.data) {
		switch d.data[d.pos] {
		case ' ', '\t', '\r', '\n':
			d.pos++
		default:
			return
		}
	}
}

func (d *eventDecoder) expect(c byte) error {
	d.skipWS()
	if d.pos >= len(d.data) || d.data[d.pos] != c {
		return d.syntaxErr("expected %q", string(c))
	}
	d.pos++
	return nil
}

// peek reports whether the next non-WS byte is c, consuming it if so.
func (d *eventDecoder) peek(c byte) bool {
	d.skipWS()
	if d.pos < len(d.data) && d.data[d.pos] == c {
		d.pos++
		return true
	}
	return false
}

// tryNull consumes a JSON null if present.
func (d *eventDecoder) tryNull() bool {
	d.skipWS()
	if d.pos+4 <= len(d.data) && string(d.data[d.pos:d.pos+4]) == "null" {
		d.pos += 4
		return true
	}
	return false
}

// parseString returns the string's bytes — a slice into the input when no
// escapes are present, the unescape scratch otherwise. Valid only until
// the next parseString call; intern or convert immediately.
func (d *eventDecoder) parseString() ([]byte, error) {
	if err := d.expect('"'); err != nil {
		return nil, err
	}
	start := d.pos
	for i := d.pos; i < len(d.data); i++ {
		c := d.data[i]
		if c == '"' {
			s := d.data[start:i]
			d.pos = i + 1
			if !utf8.Valid(s) {
				d.scratch = appendCoerced(d.scratch[:0], s)
				return d.scratch, nil
			}
			return s, nil
		}
		if c == '\\' || c < 0x20 {
			return d.parseStringSlow(start)
		}
	}
	d.pos = len(d.data)
	return nil, d.syntaxErr("unterminated string")
}

// parseStringSlow handles escapes, coercing invalid sequences to U+FFFD
// exactly like encoding/json.
func (d *eventDecoder) parseStringSlow(start int) ([]byte, error) {
	d.scratch = d.scratch[:0]
	i := start
	for i < len(d.data) {
		c := d.data[i]
		switch {
		case c == '"':
			d.pos = i + 1
			if !utf8.Valid(d.scratch) {
				// Raw invalid UTF-8 mixed with escapes: coerce in place.
				coerced := appendCoerced(nil, d.scratch)
				d.scratch = append(d.scratch[:0], coerced...)
			}
			return d.scratch, nil
		case c == '\\':
			if i+1 >= len(d.data) {
				d.pos = len(d.data)
				return nil, d.syntaxErr("unterminated escape")
			}
			e := d.data[i+1]
			i += 2
			switch e {
			case '"', '\\', '/':
				d.scratch = append(d.scratch, e)
			case 'b':
				d.scratch = append(d.scratch, '\b')
			case 'f':
				d.scratch = append(d.scratch, '\f')
			case 'n':
				d.scratch = append(d.scratch, '\n')
			case 'r':
				d.scratch = append(d.scratch, '\r')
			case 't':
				d.scratch = append(d.scratch, '\t')
			case 'u':
				r1, ok := d.hex4(i)
				if !ok {
					d.pos = i
					return nil, d.syntaxErr("invalid \\u escape")
				}
				i += 4
				r := rune(r1)
				if utf16.IsSurrogate(r) {
					// Try to pair it; unpaired surrogates become U+FFFD.
					if i+6 <= len(d.data) && d.data[i] == '\\' && d.data[i+1] == 'u' {
						if r2, ok := d.hex4(i + 2); ok {
							if paired := utf16.DecodeRune(r, rune(r2)); paired != utf8.RuneError {
								r = paired
								i += 6
							} else {
								r = utf8.RuneError
							}
						} else {
							r = utf8.RuneError
						}
					} else {
						r = utf8.RuneError
					}
				}
				d.scratch = utf8.AppendRune(d.scratch, r)
			default:
				d.pos = i
				return nil, d.syntaxErr("invalid escape \\%s", string(e))
			}
		case c < 0x20:
			d.pos = i
			return nil, d.syntaxErr("control character in string")
		default:
			d.scratch = append(d.scratch, c)
			i++
		}
	}
	d.pos = len(d.data)
	return nil, d.syntaxErr("unterminated string")
}

// hex4 parses 4 hex digits at offset i.
func (d *eventDecoder) hex4(i int) (uint16, bool) {
	if i+4 > len(d.data) {
		return 0, false
	}
	var v uint16
	for _, c := range d.data[i : i+4] {
		v <<= 4
		switch {
		case c >= '0' && c <= '9':
			v |= uint16(c - '0')
		case c >= 'a' && c <= 'f':
			v |= uint16(c-'a') + 10
		case c >= 'A' && c <= 'F':
			v |= uint16(c-'A') + 10
		default:
			return 0, false
		}
	}
	return v, true
}

// appendCoerced copies src to dst replacing invalid UTF-8 with U+FFFD.
func appendCoerced(dst, src []byte) []byte {
	for len(src) > 0 {
		r, size := utf8.DecodeRune(src)
		if r == utf8.RuneError && size == 1 {
			dst = utf8.AppendRune(dst, utf8.RuneError)
		} else {
			dst = append(dst, src[:size]...)
		}
		src = src[size:]
	}
	return dst
}

// intern returns b as a string, reusing a previously-built string when the
// same bytes were seen before (the map[string(b)] lookup does not allocate).
func (d *eventDecoder) intern(b []byte) string {
	if s, ok := d.names[string(b)]; ok {
		return s
	}
	s := string(b)
	if len(d.names) < maxInterned {
		d.names[s] = s
	}
	return s
}

// scanNumber consumes one JSON number token and validates its grammar.
func (d *eventDecoder) scanNumber() ([]byte, error) {
	d.skipWS()
	start := d.pos
	i := d.pos
	n := len(d.data)
	if i < n && d.data[i] == '-' {
		i++
	}
	// Integer part: 0 | [1-9][0-9]*
	switch {
	case i < n && d.data[i] == '0':
		i++
	case i < n && d.data[i] >= '1' && d.data[i] <= '9':
		for i < n && d.data[i] >= '0' && d.data[i] <= '9' {
			i++
		}
	default:
		d.pos = i
		return nil, d.syntaxErr("invalid number")
	}
	if i < n && d.data[i] == '.' {
		i++
		if i >= n || d.data[i] < '0' || d.data[i] > '9' {
			d.pos = i
			return nil, d.syntaxErr("digit required after decimal point")
		}
		for i < n && d.data[i] >= '0' && d.data[i] <= '9' {
			i++
		}
	}
	if i < n && (d.data[i] == 'e' || d.data[i] == 'E') {
		i++
		if i < n && (d.data[i] == '+' || d.data[i] == '-') {
			i++
		}
		if i >= n || d.data[i] < '0' || d.data[i] > '9' {
			d.pos = i
			return nil, d.syntaxErr("digit required in exponent")
		}
		for i < n && d.data[i] >= '0' && d.data[i] <= '9' {
			i++
		}
	}
	d.pos = i
	return d.data[start:i], nil
}

// parseInt parses an integer-valued number into int64 (what encoding/json
// allows for an int64 target: no fraction, no exponent).
func (d *eventDecoder) parseInt() (int64, error) {
	tok, err := d.scanNumber()
	if err != nil {
		return 0, err
	}
	neg := false
	i := 0
	if tok[0] == '-' {
		neg = true
		i = 1
	}
	var v uint64
	for ; i < len(tok); i++ {
		c := tok[i]
		if c < '0' || c > '9' {
			return 0, d.syntaxErr("number %s is not an integer", tok)
		}
		if v > (1<<63-1-9)/10+1 { // loose pre-check; exact check below
			return 0, d.syntaxErr("integer %s overflows int64", tok)
		}
		v = v*10 + uint64(c-'0')
	}
	if neg {
		if v > 1<<63 {
			return 0, d.syntaxErr("integer %s overflows int64", tok)
		}
		return -int64(v), nil
	}
	if v > 1<<63-1 {
		return 0, d.syntaxErr("integer %s overflows int64", tok)
	}
	return int64(v), nil
}

func (d *eventDecoder) parseUint64() (uint64, error) {
	tok, err := d.scanNumber()
	if err != nil {
		return 0, err
	}
	var v uint64
	for i := 0; i < len(tok); i++ {
		c := tok[i]
		if c < '0' || c > '9' {
			return 0, d.syntaxErr("number %s is not an unsigned integer", tok)
		}
		const cutoff = (1<<64 - 1) / 10
		if v > cutoff || (v == cutoff && c > '5') {
			return 0, d.syntaxErr("integer %s overflows uint64", tok)
		}
		v = v*10 + uint64(c-'0')
	}
	return v, nil
}

// pow10 holds the exactly-representable powers of ten (10^0 … 10^22).
var pow10 = [...]float64{
	1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11,
	1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
}

// parseFloat parses a JSON number, allocation-free for the common cases.
func (d *eventDecoder) parseFloat() (float64, error) {
	tok, err := d.scanNumber()
	if err != nil {
		return 0, err
	}
	if f, ok := fastFloat(tok); ok {
		return f, nil
	}
	f, err := strconv.ParseFloat(string(tok), 64) // rare slow path: allocates
	if err != nil {
		return 0, d.syntaxErr("number %s: %v", tok, err)
	}
	return f, nil
}

// fastFloat is the Clinger fast path: when the decimal mantissa fits in
// 2^53 and the net exponent is within ±22, one float multiply/divide by an
// exact power of ten is correctly rounded. ok=false sends the caller to
// strconv.
func fastFloat(tok []byte) (float64, bool) {
	i := 0
	neg := false
	if i < len(tok) && tok[i] == '-' {
		neg = true
		i++
	}
	var mant uint64
	exp := 0
	for ; i < len(tok) && tok[i] >= '0' && tok[i] <= '9'; i++ {
		if mant > (1<<53-1-9)/10 {
			return 0, false // mantissa would lose precision
		}
		mant = mant*10 + uint64(tok[i]-'0')
	}
	if i < len(tok) && tok[i] == '.' {
		i++
		for ; i < len(tok) && tok[i] >= '0' && tok[i] <= '9'; i++ {
			if mant > (1<<53-1-9)/10 {
				return 0, false
			}
			mant = mant*10 + uint64(tok[i]-'0')
			exp--
		}
	}
	if i < len(tok) && (tok[i] == 'e' || tok[i] == 'E') {
		i++
		eneg := false
		if i < len(tok) && (tok[i] == '+' || tok[i] == '-') {
			eneg = tok[i] == '-'
			i++
		}
		e := 0
		for ; i < len(tok) && tok[i] >= '0' && tok[i] <= '9'; i++ {
			e = e*10 + int(tok[i]-'0')
			if e > 400 {
				return 0, false
			}
		}
		if eneg {
			e = -e
		}
		exp += e
	}
	if i != len(tok) {
		return 0, false
	}
	var f float64
	switch {
	case mant == 0:
		f = 0
	case exp >= 0 && exp < len(pow10):
		f = float64(mant) * pow10[exp]
	case exp < 0 && -exp < len(pow10):
		f = float64(mant) / pow10[-exp]
	default:
		return 0, false
	}
	if neg {
		f = -f
	}
	return f, true
}

// objectKeys drives a `{ "key": value, ... }` loop: it returns the next
// key (nil when the object ends) and positions the parser after the colon.
func (d *eventDecoder) objectKeys(first *bool) ([]byte, error) {
	if *first {
		*first = false
		if err := d.expect('{'); err != nil {
			return nil, err
		}
		if d.peek('}') {
			return nil, nil
		}
	} else {
		if d.peek('}') {
			return nil, nil
		}
		if err := d.expect(','); err != nil {
			return nil, d.syntaxErr("expected ',' or '}' in object")
		}
	}
	key, err := d.parseString()
	if err != nil {
		return nil, err
	}
	if err := d.expect(':'); err != nil {
		return nil, err
	}
	return key, nil
}

// foldEq is ASCII-case-insensitive equality against a letters-only field
// name (the match rule encoding/json applies to untagged fields).
func foldEq(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		if b[i]|0x20 != s[i]|0x20 {
			return false
		}
	}
	return true
}

func (d *eventDecoder) parseEvent(ev *runtimepkg.Event) error {
	first := true
	for {
		key, err := d.objectKeys(&first)
		if err != nil {
			return err
		}
		if key == nil {
			return nil
		}
		switch {
		case foldEq(key, "epoch"):
			if d.tryNull() {
				break
			}
			if ev.Epoch, err = d.parseInt(); err != nil {
				return err
			}
		case foldEq(key, "op"):
			if d.tryNull() {
				break
			}
			b, err := d.parseString()
			if err != nil {
				return err
			}
			ev.Op = d.intern(b)
		case foldEq(key, "task"):
			if d.tryNull() {
				ev.Task = nil
				break
			}
			if err := d.parseTaskSpec(&d.spec); err != nil {
				return err
			}
			ev.Task = &d.spec
		case foldEq(key, "name"):
			if d.tryNull() {
				break
			}
			b, err := d.parseString()
			if err != nil {
				return err
			}
			ev.Name = d.intern(b)
		case foldEq(key, "overload"):
			if d.tryNull() {
				ev.Overload = nil
				break
			}
			if err := d.parseOverload(&d.over); err != nil {
				return err
			}
			ev.Overload = &d.over
		case foldEq(key, "seq"):
			if d.tryNull() {
				break
			}
			if ev.Seq, err = d.parseUint64(); err != nil {
				return err
			}
		default:
			return d.syntaxErr("unknown field %q in event", key)
		}
	}
}

func (d *eventDecoder) parseTaskSpec(spec *runtimepkg.TaskSpec) error {
	first := true
	for {
		key, err := d.objectKeys(&first)
		if err != nil {
			return err
		}
		if key == nil {
			return nil
		}
		switch {
		case foldEq(key, "task"):
			if d.tryNull() {
				break
			}
			if err := d.parseTask(&spec.Task); err != nil {
				return err
			}
		case foldEq(key, "criticality"):
			if d.tryNull() {
				break
			}
			v, err := d.parseInt()
			if err != nil {
				return err
			}
			spec.Criticality = int(v)
		default:
			return d.syntaxErr("unknown field %q in task spec", key)
		}
	}
}

func (d *eventDecoder) parseTask(tt *task.Task) error {
	first := true
	for {
		key, err := d.objectKeys(&first)
		if err != nil {
			return err
		}
		if key == nil {
			return nil
		}
		if d.tryNull() {
			if foldEq(key, "extralevels") {
				tt.ExtraLevels = nil
			}
			continue
		}
		switch {
		case foldEq(key, "id"):
			v, err := d.parseInt()
			if err != nil {
				return err
			}
			tt.ID = int(v)
		case foldEq(key, "name"):
			b, err := d.parseString()
			if err != nil {
				return err
			}
			tt.Name = d.intern(b)
		case foldEq(key, "period"):
			if tt.Period, err = d.parseTime(); err != nil {
				return err
			}
		case foldEq(key, "release"):
			if tt.Release, err = d.parseTime(); err != nil {
				return err
			}
		case foldEq(key, "wcetaccurate"):
			if tt.WCETAccurate, err = d.parseTime(); err != nil {
				return err
			}
		case foldEq(key, "wcetimprecise"):
			if tt.WCETImprecise, err = d.parseTime(); err != nil {
				return err
			}
		case foldEq(key, "execaccurate"):
			if err := d.parseDist(&tt.ExecAccurate); err != nil {
				return err
			}
		case foldEq(key, "execimprecise"):
			if err := d.parseDist(&tt.ExecImprecise); err != nil {
				return err
			}
		case foldEq(key, "error"):
			if err := d.parseDist(&tt.Error); err != nil {
				return err
			}
		case foldEq(key, "maxconsecutiveimprecise"):
			v, err := d.parseInt()
			if err != nil {
				return err
			}
			tt.MaxConsecutiveImprecise = int(v)
		case foldEq(key, "extralevels"):
			if err := d.parseExtraLevels(tt); err != nil {
				return err
			}
		default:
			return d.syntaxErr("unknown field %q in task", key)
		}
	}
}

func (d *eventDecoder) parseTime() (task.Time, error) {
	v, err := d.parseInt()
	return task.Time(v), err
}

func (d *eventDecoder) parseDist(dist *task.Dist) error {
	first := true
	for {
		key, err := d.objectKeys(&first)
		if err != nil {
			return err
		}
		if key == nil {
			return nil
		}
		if d.tryNull() {
			continue
		}
		var target *float64
		switch {
		case foldEq(key, "mean"):
			target = &dist.Mean
		case foldEq(key, "sigma"):
			target = &dist.Sigma
		case foldEq(key, "min"):
			target = &dist.Min
		case foldEq(key, "max"):
			target = &dist.Max
		default:
			return d.syntaxErr("unknown field %q in dist", key)
		}
		if *target, err = d.parseFloat(); err != nil {
			return err
		}
	}
}

// parseExtraLevels parses the levels array into the reusable scratch, then
// clones it: the runtime retains the task it admits, so the slice must not
// alias pooled decoder memory. Events with extra levels therefore allocate
// — they are off the zero-alloc hot path by design.
func (d *eventDecoder) parseExtraLevels(tt *task.Task) error {
	if err := d.expect('['); err != nil {
		return err
	}
	d.levels = d.levels[:0]
	if !d.peek(']') {
		for {
			var lv task.Level
			if err := d.parseLevel(&lv); err != nil {
				return err
			}
			d.levels = append(d.levels, lv)
			if d.peek(']') {
				break
			}
			if err := d.expect(','); err != nil {
				return d.syntaxErr("expected ',' or ']' in levels array")
			}
		}
	}
	if len(d.levels) == 0 {
		tt.ExtraLevels = []task.Level{}
		return nil
	}
	tt.ExtraLevels = append([]task.Level(nil), d.levels...)
	return nil
}

func (d *eventDecoder) parseLevel(lv *task.Level) error {
	first := true
	for {
		key, err := d.objectKeys(&first)
		if err != nil {
			return err
		}
		if key == nil {
			return nil
		}
		if d.tryNull() {
			continue
		}
		switch {
		case foldEq(key, "wcet"):
			if lv.WCET, err = d.parseTime(); err != nil {
				return err
			}
		case foldEq(key, "exec"):
			if err := d.parseDist(&lv.Exec); err != nil {
				return err
			}
		case foldEq(key, "error"):
			if err := d.parseDist(&lv.Error); err != nil {
				return err
			}
		default:
			return d.syntaxErr("unknown field %q in level", key)
		}
	}
}

func (d *eventDecoder) parseOverload(ov *runtimepkg.OverloadSpec) error {
	first := true
	for {
		key, err := d.objectKeys(&first)
		if err != nil {
			return err
		}
		if key == nil {
			return nil
		}
		if d.tryNull() {
			continue
		}
		switch {
		case foldEq(key, "rates"):
			if err := d.parseFaultRates(ov); err != nil {
				return err
			}
		case foldEq(key, "epochs"):
			v, err := d.parseInt()
			if err != nil {
				return err
			}
			ov.Epochs = int(v)
		default:
			return d.syntaxErr("unknown field %q in overload", key)
		}
	}
}

func (d *eventDecoder) parseFaultRates(ov *runtimepkg.OverloadSpec) error {
	first := true
	for {
		key, err := d.objectKeys(&first)
		if err != nil {
			return err
		}
		if key == nil {
			return nil
		}
		if d.tryNull() {
			continue
		}
		var target *float64
		switch {
		case foldEq(key, "overrunprob"):
			target = &ov.Rates.OverrunProb
		case foldEq(key, "overrunfactor"):
			target = &ov.Rates.OverrunFactor
		case foldEq(key, "abortprob"):
			target = &ov.Rates.AbortProb
		case foldEq(key, "abortpoint"):
			target = &ov.Rates.AbortPoint
		case foldEq(key, "dropprob"):
			target = &ov.Rates.DropProb
		default:
			return d.syntaxErr("unknown field %q in fault rates", key)
		}
		if *target, err = d.parseFloat(); err != nil {
			return err
		}
	}
}
