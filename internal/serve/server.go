package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	runtimepkg "nprt/internal/runtime"
)

// Server is the HTTP control plane over one durable store. The store is
// not safe for concurrent use, so a single engine goroutine owns it;
// handlers communicate with the engine through a *bounded* admission
// queue and read state from an atomically-published snapshot. The
// boundedness is the load-shedding contract: when the queue is full the
// server answers 503 with Retry-After instead of queueing unboundedly,
// and anything it *did* accept is guaranteed to be applied — the drain
// path flushes the queue before the engine exits, so there is no
// accepted-then-dropped window.
type Server struct {
	opt Options

	mu       sync.Mutex // guards draining + enqueue (the accept/drain race)
	draining bool
	queue    chan ticket

	ready      atomic.Bool
	state      atomic.Pointer[State]
	stop       chan struct{}
	engineDone chan struct{}
	fatal      chan error

	store *runtimepkg.Store

	admitted atomic.Uint64
	rejected atomic.Uint64 // admission ran, verdict or stale error against it
	shed     atomic.Uint64 // load-shed at the door: queue full or draining
}

// Options parameterizes New.
type Options struct {
	// QueueDepth bounds the admission queue (default 16).
	QueueDepth int
	// RequestTimeout bounds how long an /admit handler waits for the
	// engine's reply (default 5s). The request may still be applied
	// after the handler gives up — it was accepted and is durable.
	RequestTimeout time.Duration
	// RetryAfter is the hint sent with every 503 (default 1s).
	RetryAfter time.Duration
	// EpochInterval, when positive, has the engine run epochs on a
	// timer. Zero disables automatic epochs (tape-driven or test use).
	EpochInterval time.Duration
	// CheckpointEvery checkpoints after every Nth epoch (0 = never).
	CheckpointEvery int
	// Logf, when set, receives operational log lines.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 16
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 5 * time.Second
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	return o
}

// State is the atomically-published view served by /state. It is a copy;
// readers never touch the store.
type State struct {
	Ready    bool     `json:"ready"`
	Draining bool     `json:"draining"`
	Epoch    int64    `json:"epoch"`
	Digest   string   `json:"digest"`
	Tasks    int      `json:"tasks"`
	Shed     []string `json:"shed,omitempty"`

	EventsApplied uint64 `json:"events_applied"`
	WALIndex      uint64 `json:"wal_index"`

	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`

	Admitted  uint64 `json:"admitted"`
	Rejected  uint64 `json:"rejected"`
	LoadShed  uint64 `json:"load_shed"`
	LastError string `json:"last_error,omitempty"`

	Recovery *runtimepkg.RecoveryInfo `json:"recovery,omitempty"`
}

type ticket struct {
	ev    runtimepkg.Event
	reply chan admitReply // buffered(1): the engine never blocks on it
}

type admitReply struct {
	dec runtimepkg.Decision
	err error
}

// New builds a server in the not-ready state: /healthz answers 200,
// /readyz and /admit answer 503 until Attach hands it a recovered store.
// That ordering is what lets impserve bind the listener before replay —
// probes see "alive but not ready" instead of connection refused.
func New(opt Options) *Server {
	opt = opt.withDefaults()
	s := &Server{
		opt:        opt,
		queue:      make(chan ticket, opt.QueueDepth),
		stop:       make(chan struct{}),
		engineDone: make(chan struct{}),
		fatal:      make(chan error, 1),
	}
	s.state.Store(&State{QueueCap: opt.QueueDepth})
	return s
}

// Attach hands the server a recovered store, starts the engine goroutine,
// and flips readiness. Call exactly once, after OpenStore returns — i.e.
// after replay completed and the digest cross-checks passed.
func (s *Server) Attach(st *runtimepkg.Store) {
	s.store = st
	s.ready.Store(true)
	s.publish("")
	// The engine starts only after the final direct publish: from here on,
	// exactly one goroutine (it, then Shutdown after it exits) touches the
	// store.
	go s.engine()
}

// Fatal delivers at most one unrecoverable engine error (journal write
// failure, replay-grade divergence). The serving loop should treat it as
// its own failure and return, letting the supervisor restart via the
// recovery path.
func (s *Server) Fatal() <-chan error { return s.fatal }

// Snapshot returns the current published state.
func (s *Server) Snapshot() State { return *s.state.Load() }

// Shutdown drains the server: no new admissions are accepted (503), the
// engine applies everything already queued, then stops. The store is
// left open — the caller closes it after Shutdown returns. Safe to call
// before Attach (it just bars the door).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	s.ready.Store(false)
	if already || s.store == nil {
		return nil
	}
	close(s.stop)
	select {
	case <-s.engineDone:
		s.publish("")
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// engine owns the store: admissions, timed epochs, checkpoints. Exactly
// one of these runs per Attach.
func (s *Server) engine() {
	defer close(s.engineDone)
	var tick <-chan time.Time
	if s.opt.EpochInterval > 0 {
		tk := time.NewTicker(s.opt.EpochInterval)
		defer tk.Stop()
		tick = tk.C
	}
	epochs := 0
	for {
		select {
		case t := <-s.queue:
			if !s.serveTicket(t) {
				return
			}
		case <-tick:
			rep, err := s.store.RunEpoch()
			if err != nil {
				s.fail(fmt.Errorf("epoch: %w", err))
				return
			}
			epochs++
			if s.opt.CheckpointEvery > 0 && epochs%s.opt.CheckpointEvery == 0 {
				if _, err := s.store.Checkpoint(); err != nil {
					s.fail(fmt.Errorf("checkpoint: %w", err))
					return
				}
			}
			_ = rep
			s.publish("")
		case <-s.stop:
			// Drain: every ticket that made it into the queue was
			// accepted, so it gets applied before the engine exits. New
			// enqueues are impossible — Shutdown set draining under the
			// same mutex tryEnqueue holds.
			for {
				select {
				case t := <-s.queue:
					if !s.serveTicket(t) {
						return
					}
				default:
					return
				}
			}
		}
	}
}

// serveTicket applies one accepted admission; false means the store
// failed at the journal level and the engine must exit.
func (s *Server) serveTicket(t ticket) bool {
	// Live admissions carry the store's current epoch so the journaled
	// event replays at the same position.
	t.ev.Epoch = s.store.Epoch()
	dec, err := s.store.Apply(t.ev)
	if err != nil {
		if runtimepkg.IsStaleRequest(err) {
			s.rejected.Add(1)
			s.publish("") // before the reply: the handler's client may read /state next
			t.reply <- admitReply{dec: dec, err: err}
			return true
		}
		// Journal-level failure: the store can no longer promise
		// durability. Take the engine down, then tell the handler.
		s.fail(fmt.Errorf("admit: %w", err))
		t.reply <- admitReply{dec: dec, err: err}
		return false
	}
	if dec.Verdict == runtimepkg.Rejected {
		s.rejected.Add(1)
	} else {
		s.admitted.Add(1)
	}
	s.publish("")
	t.reply <- admitReply{dec: dec}
	return true
}

// fail publishes an unrecoverable engine error and stops readiness.
// The engine returns right after; queued handlers time out (their
// requests were accepted but durability is gone, which is exactly what
// the restart will sort out from the journal).
func (s *Server) fail(err error) {
	s.logf("engine: fatal: %v", err)
	s.ready.Store(false)
	s.publish(err.Error())
	select {
	case s.fatal <- err:
	default:
	}
}

// publish refreshes the /state snapshot from the engine's view.
func (s *Server) publish(lastErr string) {
	prev := s.state.Load()
	st := &State{
		Ready:      s.ready.Load(),
		QueueDepth: len(s.queue),
		QueueCap:   cap(s.queue),
		Admitted:   s.admitted.Load(),
		Rejected:   s.rejected.Load(),
		LoadShed:   s.shed.Load(),
		LastError:  lastErr,
	}
	if lastErr == "" && prev != nil {
		st.LastError = prev.LastError
	}
	s.mu.Lock()
	st.Draining = s.draining
	s.mu.Unlock()
	if s.store != nil {
		st.Epoch = s.store.Epoch()
		st.Digest = fmt.Sprintf("%016x", s.store.Digest())
		st.Tasks = len(s.store.Runtime().Tasks())
		st.Shed = s.store.Runtime().ShedTasks()
		st.EventsApplied = s.store.EventsApplied()
		st.WALIndex = s.store.LastIndex()
		rec := s.store.Recovery()
		st.Recovery = &rec
	}
	s.state.Store(st)
}

// tryEnqueue admits a ticket into the bounded queue, or reports why not.
// The mutex closes the accept/drain race: once Shutdown has set draining,
// no ticket can slip into a queue nobody will drain.
func (s *Server) tryEnqueue(t ticket) (ok, full bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false, false
	}
	select {
	case s.queue <- t:
		return true, false
	default:
		return false, true
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.opt.Logf != nil {
		s.opt.Logf(format, args...)
	}
}

// Handler returns the control-plane mux:
//
//	GET  /healthz  200 while the process is alive (liveness)
//	GET  /readyz   200 only between Attach (replay done) and Shutdown
//	GET  /state    the published State snapshot, JSON
//	POST /admit    an Event {"op": "add"|"remove"|"overload", ...};
//	               200 decision JSON · 400 malformed · 409 stale ·
//	               503 + Retry-After when shedding or not ready
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !s.ready.Load() {
			s.unavailable(w, "not ready")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("GET /state", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.state.Load())
	})
	mux.HandleFunc("POST /admit", s.handleAdmit)
	return mux
}

func (s *Server) handleAdmit(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		s.shed.Add(1)
		s.unavailable(w, "not ready")
		return
	}
	var ev runtimepkg.Event
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ev); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("decoding event: %v", err))
		return
	}
	ev.Epoch = 0 // the engine stamps the live epoch
	if err := ev.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	t := ticket{ev: ev, reply: make(chan admitReply, 1)}
	ok, full := s.tryEnqueue(t)
	if !ok {
		s.shed.Add(1)
		if full {
			s.unavailable(w, "admission queue full")
		} else {
			s.unavailable(w, "draining")
		}
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.opt.RequestTimeout)
	defer cancel()
	select {
	case rep := <-t.reply:
		if rep.err != nil && !runtimepkg.IsStaleRequest(rep.err) {
			httpError(w, http.StatusInternalServerError, rep.err.Error())
			return
		}
		status := http.StatusOK
		if rep.err != nil {
			status = http.StatusConflict
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		out := struct {
			Decision runtimepkg.Decision `json:"decision"`
			Error    string              `json:"error,omitempty"`
		}{Decision: rep.dec}
		if rep.err != nil {
			out.Error = rep.err.Error()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	case <-ctx.Done():
		// Accepted and still queued: it WILL be applied (and is durable
		// once it is). 504 tells the client its wait ended, not that the
		// request was dropped.
		httpError(w, http.StatusGatewayTimeout, "accepted; decision still pending")
	}
}

// unavailable writes the load-shedding 503 with the Retry-After hint.
func (s *Server) unavailable(w http.ResponseWriter, msg string) {
	secs := int(s.opt.RetryAfter.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	httpError(w, http.StatusServiceUnavailable, msg)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
