package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	goruntime "runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"nprt/internal/journal"
	runtimepkg "nprt/internal/runtime"
)

// Server is the HTTP control plane over one durable store. The store is
// not safe for concurrent use, so a single engine goroutine owns it;
// handlers communicate with the engine through a *bounded* admission
// queue and read state from an atomically-published snapshot. The
// boundedness is the load-shedding contract: when the queue is full the
// server answers 503 with Retry-After instead of queueing unboundedly,
// and anything it *did* accept is guaranteed to be applied — the drain
// path flushes the queue before the engine exits, so there is no
// accepted-then-dropped window.
type Server struct {
	opt Options

	mu       sync.Mutex // guards draining + enqueue (the accept/drain race)
	draining bool
	queue    chan ticket

	ready      atomic.Bool
	state      atomic.Pointer[State]
	stop       chan struct{}
	engineDone chan struct{}
	fatal      chan error

	store *runtimepkg.Store

	admitted atomic.Uint64
	rejected atomic.Uint64 // admission ran, verdict or stale error against it
	shed     atomic.Uint64 // load-shed at the door: queue full or draining

	deadlineShed atomic.Uint64 // shed at enqueue: predicted wait > client deadline
	codelShed    atomic.Uint64 // shed at enqueue: CoDel standing-queue control

	ctlMu sync.Mutex
	ctl   *queueCtl // drain-rate estimate + adaptive admission (always present)
}

// Options parameterizes New.
type Options struct {
	// QueueDepth bounds the admission queue (default 16).
	QueueDepth int
	// RequestTimeout bounds how long an /admit handler waits for the
	// engine's reply (default 5s). The request may still be applied
	// after the handler gives up — it was accepted and is durable.
	RequestTimeout time.Duration
	// RetryAfter is the hint sent with every 503 (default 1s).
	RetryAfter time.Duration
	// EpochInterval, when positive, has the engine run epochs on a
	// timer. Zero disables automatic epochs (tape-driven or test use).
	EpochInterval time.Duration
	// CheckpointEvery checkpoints after every Nth epoch (0 = never).
	CheckpointEvery int
	// MaxBatchEvents caps how many events one /admit/batch request may
	// carry (default 256).
	MaxBatchEvents int
	// CoDelTarget, when positive, arms CoDel-style adaptive queue control:
	// once queue sojourn stands above this target for CoDelInterval, new
	// arrivals are shed with sqrt-spaced pacing until it dips back under.
	// Zero leaves adaptive shedding off (deadline shedding and drain-rate
	// Retry-After hints still work — they only need the rate estimate).
	CoDelTarget time.Duration
	// CoDelInterval is the standing-queue grace period (default 100ms
	// when CoDelTarget is set).
	CoDelInterval time.Duration
	// Logf, when set, receives operational log lines.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 16
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 5 * time.Second
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.MaxBatchEvents <= 0 {
		o.MaxBatchEvents = 256
	}
	return o
}

// State is the atomically-published view served by /state. It is a copy;
// readers never touch the store.
type State struct {
	Ready    bool     `json:"ready"`
	Draining bool     `json:"draining"`
	Epoch    int64    `json:"epoch"`
	Digest   string   `json:"digest"`
	Tasks    int      `json:"tasks"`
	Shed     []string `json:"shed,omitempty"`

	EventsApplied uint64 `json:"events_applied"`
	WALIndex      uint64 `json:"wal_index"`

	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`

	Admitted  uint64 `json:"admitted"`
	Rejected  uint64 `json:"rejected"`
	LoadShed  uint64 `json:"load_shed"`
	LastError string `json:"last_error,omitempty"`

	// DeadlineShed / CoDelShed break LoadShed's enqueue-gate component out
	// by cause: predicted wait past the client deadline, or the CoDel
	// standing-queue controller.
	DeadlineShed uint64 `json:"deadline_shed,omitempty"`
	CoDelShed    uint64 `json:"codel_shed,omitempty"`
	// DrainPerSec is the measured engine drain rate (tickets/s, EWMA);
	// QueueWaitMs is the last observed head-of-queue sojourn.
	DrainPerSec float64 `json:"drain_per_sec,omitempty"`
	QueueWaitMs float64 `json:"queue_wait_ms,omitempty"`

	Recovery *runtimepkg.RecoveryInfo `json:"recovery,omitempty"`
	Commit   *CommitState             `json:"commit,omitempty"`
}

// CommitState is the group-commit amortization view on /state: the
// journal's counters plus the derived records-per-sync ratio.
type CommitState struct {
	journal.GroupStats
	RecordsPerSync float64 `json:"records_per_sync"`
}

// ticket is one accepted admission request: one event from /admit, or up
// to MaxBatchEvents from /admit/batch. The events slice may alias a pooled
// decoder's scratch — the engine reads it (and stamps Epoch) only until it
// sends the reply, after which the handler recycles the decoder.
type ticket struct {
	evs   []runtimepkg.Event
	reply chan admitReply // buffered(1): the engine never blocks on it
	enq   time.Time       // when the ticket entered the queue (sojourn base)
}

// admitReply carries per-event results positionally (decs[i]/errs[i] for
// ticket.evs[i]); err is a fatal store failure covering the whole ticket.
type admitReply struct {
	decs []runtimepkg.Decision
	errs []error
	err  error
}

// New builds a server in the not-ready state: /healthz answers 200,
// /readyz and /admit answer 503 until Attach hands it a recovered store.
// That ordering is what lets impserve bind the listener before replay —
// probes see "alive but not ready" instead of connection refused.
func New(opt Options) *Server {
	opt = opt.withDefaults()
	s := &Server{
		opt:        opt,
		queue:      make(chan ticket, opt.QueueDepth),
		stop:       make(chan struct{}),
		engineDone: make(chan struct{}),
		fatal:      make(chan error, 1),
		ctl:        newQueueCtl(opt.CoDelTarget, opt.CoDelInterval),
	}
	s.state.Store(&State{QueueCap: opt.QueueDepth})
	return s
}

// Attach hands the server a recovered store, starts the engine goroutine,
// and flips readiness. Call exactly once, after OpenStore returns — i.e.
// after replay completed and the digest cross-checks passed.
func (s *Server) Attach(st *runtimepkg.Store) {
	s.store = st
	s.ready.Store(true)
	s.publish("")
	// The engine starts only after the final direct publish: from here on,
	// exactly one goroutine (it, then Shutdown after it exits) touches the
	// store.
	go s.engine()
}

// Fatal delivers at most one unrecoverable engine error (journal write
// failure, replay-grade divergence). The serving loop should treat it as
// its own failure and return, letting the supervisor restart via the
// recovery path.
func (s *Server) Fatal() <-chan error { return s.fatal }

// Snapshot returns the current published state.
func (s *Server) Snapshot() State { return *s.state.Load() }

// Shutdown drains the server: no new admissions are accepted (503), the
// engine applies everything already queued, then stops. The store is
// left open — the caller closes it after Shutdown returns. Safe to call
// before Attach (it just bars the door).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	s.ready.Store(false)
	if already || s.store == nil {
		return nil
	}
	close(s.stop)
	select {
	case <-s.engineDone:
		s.publish("")
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// engine owns the store: admissions, timed epochs, checkpoints. Exactly
// one of these runs per Attach.
func (s *Server) engine() {
	defer close(s.engineDone)
	var tick <-chan time.Time
	if s.opt.EpochInterval > 0 {
		tk := time.NewTicker(s.opt.EpochInterval)
		defer tk.Stop()
		tick = tk.C
	}
	epochs := 0
	tickets := make([]ticket, 0, s.opt.QueueDepth)
	for {
		select {
		case t := <-s.queue:
			if !s.serveBatch(s.gather(tickets[:0], t)) {
				return
			}
		case <-tick:
			rep, err := s.store.RunEpoch()
			if err != nil {
				s.fail(fmt.Errorf("epoch: %w", err))
				return
			}
			epochs++
			if s.opt.CheckpointEvery > 0 && epochs%s.opt.CheckpointEvery == 0 {
				if _, err := s.store.Checkpoint(); err != nil {
					s.fail(fmt.Errorf("checkpoint: %w", err))
					return
				}
			}
			_ = rep
			s.publish("")
		case <-s.stop:
			// Drain: every ticket that made it into the queue was
			// accepted, so it gets applied before the engine exits. New
			// enqueues are impossible — Shutdown set draining under the
			// same mutex tryEnqueue holds. (Store.Close then flushes any
			// commit group these batches leave open; the engine's batches
			// are fully synced before reply, so this drain loses nothing.)
			for {
				select {
				case t := <-s.queue:
					if !s.serveBatch(s.gather(tickets[:0], t)) {
						return
					}
				default:
					return
				}
			}
		}
	}
}

// gather collects the commit group for one engine wake-up: the ticket
// that woke it, everything already queued, and — only when it has company
// — a brief yield-spin for the stragglers racing this drain (clients
// resubmitting right after the previous batch's replies). A lone ticket
// commits immediately: the serial path keeps serial latency.
func (s *Server) gather(tickets []ticket, t ticket) []ticket {
	tickets = append(tickets, t)
	drain := func() {
		for len(tickets) < cap(tickets) {
			select {
			case t2 := <-s.queue:
				tickets = append(tickets, t2)
			default:
				return
			}
		}
	}
	drain()
	if len(tickets) == 1 {
		goruntime.Gosched()
		drain()
	}
	if len(tickets) > 1 {
		for empty := 0; len(tickets) < cap(tickets) && empty < 4; {
			before := len(tickets)
			goruntime.Gosched()
			drain()
			if len(tickets) == before {
				empty++
			} else {
				empty = 0
			}
		}
	}
	return tickets
}

// serveBatch applies one gathered batch: every event of every ticket is
// journaled under one covering fsync (Store.ApplyBatch), then counted
// exactly once — a batch member and a lone /admit event hit the admitted/
// rejected counters identically. false means the store failed at the
// journal level and the engine must exit.
func (s *Server) serveBatch(tickets []ticket) bool {
	start := time.Now()
	// Live admissions carry the store's current epoch so the journaled
	// events replay at the same position.
	epoch := s.store.Epoch()
	var evs []runtimepkg.Event
	if len(tickets) == 1 {
		evs = tickets[0].evs
	} else {
		total := 0
		for i := range tickets {
			total += len(tickets[i].evs)
		}
		evs = make([]runtimepkg.Event, 0, total)
		for i := range tickets {
			evs = append(evs, tickets[i].evs...)
		}
	}
	for i := range evs {
		evs[i].Epoch = epoch
	}

	decs, errs, err := s.store.ApplyBatch(evs)
	now := time.Now()
	s.ctlMu.Lock()
	s.ctl.observe(len(tickets), now.Sub(start), start.Sub(tickets[0].enq), now)
	s.ctlMu.Unlock()
	if err != nil {
		// Journal-level failure: the store can no longer promise
		// durability. Take the engine down, then tell the handlers.
		s.fail(fmt.Errorf("admit: %w", err))
		for i := range tickets {
			tickets[i].reply <- admitReply{err: err}
		}
		return false
	}
	for i := range evs {
		if errs[i] != nil || decs[i].Verdict == runtimepkg.Rejected {
			s.rejected.Add(1)
		} else {
			s.admitted.Add(1)
		}
	}
	s.publish("") // before the replies: a handler's client may read /state next
	off := 0
	for i := range tickets {
		n := len(tickets[i].evs)
		tickets[i].reply <- admitReply{decs: decs[off : off+n], errs: errs[off : off+n]}
		off += n
	}
	return true
}

// fail publishes an unrecoverable engine error and stops readiness.
// The engine returns right after; queued handlers time out (their
// requests were accepted but durability is gone, which is exactly what
// the restart will sort out from the journal).
func (s *Server) fail(err error) {
	s.logf("engine: fatal: %v", err)
	s.ready.Store(false)
	s.publish(err.Error())
	select {
	case s.fatal <- err:
	default:
	}
}

// publish refreshes the /state snapshot from the engine's view.
func (s *Server) publish(lastErr string) {
	prev := s.state.Load()
	st := &State{
		Ready:      s.ready.Load(),
		QueueDepth: len(s.queue),
		QueueCap:   cap(s.queue),
		Admitted:   s.admitted.Load(),
		Rejected:   s.rejected.Load(),
		LoadShed:   s.shed.Load(),
		LastError:  lastErr,

		DeadlineShed: s.deadlineShed.Load(),
		CoDelShed:    s.codelShed.Load(),
	}
	s.ctlMu.Lock()
	if s.ctl.svcEWMA > 0 {
		st.DrainPerSec = float64(time.Second) / float64(s.ctl.svcEWMA)
	}
	st.QueueWaitMs = float64(s.ctl.lastSojourn) / float64(time.Millisecond)
	s.ctlMu.Unlock()
	if lastErr == "" && prev != nil {
		st.LastError = prev.LastError
	}
	s.mu.Lock()
	st.Draining = s.draining
	s.mu.Unlock()
	if s.store != nil {
		st.Epoch = s.store.Epoch()
		st.Digest = fmt.Sprintf("%016x", s.store.Digest())
		st.Tasks = len(s.store.Runtime().Tasks())
		st.Shed = s.store.Runtime().ShedTasks()
		st.EventsApplied = s.store.EventsApplied()
		st.WALIndex = s.store.LastIndex()
		rec := s.store.Recovery()
		st.Recovery = &rec
		cs := s.store.CommitStats()
		st.Commit = &CommitState{GroupStats: cs, RecordsPerSync: cs.RecordsPerSync()}
	}
	s.state.Store(st)
}

// tryEnqueue admits a ticket into the bounded queue, or reports why not.
// The mutex closes the accept/drain race: once Shutdown has set draining,
// no ticket can slip into a queue nobody will drain.
func (s *Server) tryEnqueue(t ticket) (ok, full bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false, false
	}
	t.enq = time.Now()
	select {
	case s.queue <- t:
		return true, false
	default:
		return false, true
	}
}

// admitGate is the pre-enqueue adaptive check: deadline-aware shedding
// (predicted queue wait vs the client's X-Deadline-Ms) and CoDel pacing.
// reason "" admits; otherwise the request is shed before it consumes
// queue space, with retry as the drain-rate-derived backoff hint.
func (s *Server) admitGate(deadline time.Duration) (reason string, retry time.Duration) {
	s.ctlMu.Lock()
	defer s.ctlMu.Unlock()
	return s.ctl.admit(time.Now(), len(s.queue), deadline)
}

// shedAdaptive accounts and answers one admitGate shed.
func (s *Server) shedAdaptive(w http.ResponseWriter, reason string, retry time.Duration) {
	s.shed.Add(1)
	msg := "admission queue standing over target"
	if reason == "deadline" {
		s.deadlineShed.Add(1)
		msg = "predicted queue wait exceeds request deadline"
	} else {
		s.codelShed.Add(1)
	}
	s.unavailableHint(w, msg, retry)
}

// DeadlineMs parses the X-Deadline-Ms request header (0 when absent or
// malformed — a bad hint must not reject the request itself). Exported
// for the cluster serving layer, which propagates the same header.
func DeadlineMs(r *http.Request) time.Duration {
	v := r.Header.Get("X-Deadline-Ms")
	if v == "" {
		return 0
	}
	ms, err := strconv.Atoi(v)
	if err != nil || ms <= 0 {
		return 0
	}
	return time.Duration(ms) * time.Millisecond
}

// replyWait bounds a handler's wait for the engine: the request timeout,
// tightened to the client's own deadline when one was propagated.
func (s *Server) replyWait(deadline time.Duration) time.Duration {
	if deadline > 0 && deadline < s.opt.RequestTimeout {
		return deadline
	}
	return s.opt.RequestTimeout
}

func (s *Server) logf(format string, args ...any) {
	if s.opt.Logf != nil {
		s.opt.Logf(format, args...)
	}
}

// Handler returns the control-plane mux:
//
//	GET  /healthz  200 while the process is alive (liveness)
//	GET  /readyz   200 only between Attach (replay done) and Shutdown
//	GET  /state    the published State snapshot, JSON
//	POST /admit    an Event {"op": "add"|"remove"|"overload", ...};
//	               200 decision JSON · 400 malformed · 409 stale ·
//	               503 + Retry-After when shedding, saturated or not ready
//	POST /admit/batch  a JSON array of Events (≤ MaxBatchEvents); 200 with
//	               {"decisions": [...]} — one entry per event, in order,
//	               each carrying its decision or its own error
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !s.ready.Load() {
			s.unavailable(w, "not ready")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("GET /state", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.state.Load())
	})
	mux.HandleFunc("POST /admit", s.handleAdmit)
	mux.HandleFunc("POST /admit/batch", s.handleAdmitBatch)
	return mux
}

// decisionEntry is one per-event result in an admit response.
type decisionEntry struct {
	Decision runtimepkg.Decision `json:"decision"`
	Error    string              `json:"error,omitempty"`
}

func (s *Server) handleAdmit(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		s.shed.Add(1)
		s.unavailable(w, "not ready")
		return
	}
	// Pooled zero-allocation decode: the ticket's event lives in the
	// decoder's scratch, so the decoder goes back to the pool only after
	// the engine's reply — and is deliberately leaked to the GC on
	// timeout, when the engine may still read it.
	d := getDecoder()
	evs, err := d.Decode(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		putDecoder(d)
		httpError(w, http.StatusBadRequest, fmt.Sprintf("decoding event: %v", err))
		return
	}
	evs[0].Epoch = 0 // the engine stamps the live epoch
	if err := evs[0].Validate(); err != nil {
		putDecoder(d)
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	deadline := DeadlineMs(r)
	if reason, retry := s.admitGate(deadline); reason != "" {
		putDecoder(d)
		s.shedAdaptive(w, reason, retry)
		return
	}
	t := ticket{evs: evs, reply: make(chan admitReply, 1)}
	ok, full := s.tryEnqueue(t)
	if !ok {
		putDecoder(d)
		s.shed.Add(1)
		if full {
			s.unavailable(w, "admission queue full")
		} else {
			s.unavailable(w, "draining")
		}
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.replyWait(deadline))
	defer cancel()
	select {
	case rep := <-t.reply:
		putDecoder(d)
		if rep.err != nil {
			httpError(w, http.StatusInternalServerError, rep.err.Error())
			return
		}
		evErr := rep.errs[0]
		if evErr != nil && !runtimepkg.IsStaleRequest(evErr) {
			httpError(w, http.StatusInternalServerError, evErr.Error())
			return
		}
		status := http.StatusOK
		if evErr != nil {
			status = http.StatusConflict
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		out := decisionEntry{Decision: rep.decs[0]}
		if evErr != nil {
			out.Error = evErr.Error()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	case <-ctx.Done():
		// The engine is saturated: the request was accepted and WILL be
		// applied (durably), but this client's wait is over. Shed it with
		// the same 503 + Retry-After contract as the front door, so
		// clients see one overload signal, not two.
		s.shed.Add(1)
		s.unavailable(w, "engine saturated; accepted admission still pending")
	}
}

func (s *Server) handleAdmitBatch(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		s.shed.Add(1)
		s.unavailable(w, "not ready")
		return
	}
	var evs []runtimepkg.Event
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&evs); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("decoding events: %v", err))
		return
	}
	if len(evs) > s.opt.MaxBatchEvents {
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d events exceeds the %d-event limit", len(evs), s.opt.MaxBatchEvents))
		return
	}
	out := struct {
		Decisions []decisionEntry `json:"decisions"`
	}{Decisions: []decisionEntry{}}
	if len(evs) == 0 {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(out)
		return
	}
	for i := range evs {
		evs[i].Epoch = 0 // the engine stamps the live epoch
	}

	deadline := DeadlineMs(r)
	if reason, retry := s.admitGate(deadline); reason != "" {
		s.shedAdaptive(w, reason, retry)
		return
	}
	t := ticket{evs: evs, reply: make(chan admitReply, 1)}
	ok, full := s.tryEnqueue(t)
	if !ok {
		s.shed.Add(1)
		if full {
			s.unavailable(w, "admission queue full")
		} else {
			s.unavailable(w, "draining")
		}
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.replyWait(deadline))
	defer cancel()
	select {
	case rep := <-t.reply:
		if rep.err != nil {
			httpError(w, http.StatusInternalServerError, rep.err.Error())
			return
		}
		for i := range rep.decs {
			e := decisionEntry{Decision: rep.decs[i]}
			if rep.errs[i] != nil {
				e.Error = rep.errs[i].Error()
			}
			out.Decisions = append(out.Decisions, e)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	case <-ctx.Done():
		s.shed.Add(1)
		s.unavailable(w, "engine saturated; accepted batch still pending")
	}
}

// unavailable writes the load-shedding 503 with a Retry-After hint
// derived from the live drain rate (falling back to the static option
// before the first batch has been measured).
func (s *Server) unavailable(w http.ResponseWriter, msg string) {
	s.unavailableHint(w, msg, s.retryHint())
}

// retryHint predicts how long the standing queue takes to drain — the
// honest backoff for a client shed at the door.
func (s *Server) retryHint() time.Duration {
	s.ctlMu.Lock()
	defer s.ctlMu.Unlock()
	if wait := s.ctl.predictWait(len(s.queue) + 1); wait > 0 {
		return wait
	}
	return s.opt.RetryAfter
}

// unavailableHint writes the 503 with an explicit hint: Retry-After in
// whole seconds (ceiling, minimum 1 — sub-second hints must never round
// to "retry immediately") plus Retry-After-Ms carrying the real value for
// clients that can honor milliseconds.
func (s *Server) unavailableHint(w http.ResponseWriter, msg string, hint time.Duration) {
	if hint <= 0 {
		hint = s.opt.RetryAfter
	}
	secs := int((hint + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	ms := int(hint / time.Millisecond)
	if ms < 1 {
		ms = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	w.Header().Set("Retry-After-Ms", strconv.Itoa(ms))
	httpError(w, http.StatusServiceUnavailable, msg)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
