// Package serve turns the durable runtime into a crash-only network
// service: a supervisor that restarts the serving loop after panics or
// errors (exponential backoff, jitter, a restart budget), and an HTTP
// control plane with readiness gating, a bounded admission queue, and
// load shedding. The design premise is the crash-only one — the service
// has no special shutdown state to protect, because recovery *is* the
// startup path (runtime.OpenStore), so the supervisor's only job is to
// re-enter it without melting the machine in a crash loop.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"time"
)

// ErrRestartBudget reports that the supervised function failed more times
// than the budget allows; the last failure is wrapped.
var ErrRestartBudget = errors.New("serve: restart budget exhausted")

// Supervisor re-runs a function until it succeeds, the context ends, or
// the restart budget runs out. Panics inside the function are recovered
// and treated as failures (with the stack captured in the error), so a
// bug in one serving incarnation costs a restart, not the process.
type Supervisor struct {
	// MaxRestarts is how many times Run will restart after a failure
	// (0 means the first failure is final). The first run is free.
	MaxRestarts int
	// BackoffBase is the delay before the first restart; each subsequent
	// restart doubles it, capped at BackoffCap. Defaults: 100ms, 30s.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Jitter scales each delay by a random factor in [0.5, 1.5) so a
	// fleet of restarting replicas does not thundering-herd a shared
	// dependency. Tests inject a deterministic source; nil seeds from
	// the clock.
	Jitter *rand.Rand
	// Sleep is the delay function (injectable for tests; default
	// context-aware sleep).
	Sleep func(ctx context.Context, d time.Duration)
	// OnRestart, when set, observes each failure before the backoff:
	// attempt number (1-based), the error, and the delay chosen.
	OnRestart func(attempt int, err error, delay time.Duration)
	// ResetAfter, when positive, forgives past failures once an incarnation
	// stays up at least this long: its crash counts as the first failure
	// again (and backoff restarts from BackoffBase). Without it a service
	// that crashes once a week eventually exhausts any fixed budget.
	ResetAfter time.Duration
	// Now is the clock used for ResetAfter (injectable; default time.Now).
	Now func() time.Time
}

// Run invokes f, restarting it on error or panic per the budget. It
// returns nil when f does, ctx.Err() when the context ends first, and
// ErrRestartBudget (wrapping the final failure) when the budget is gone.
func (s *Supervisor) Run(ctx context.Context, f func(context.Context) error) error {
	base := s.BackoffBase
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	cap := s.BackoffCap
	if cap <= 0 {
		cap = 30 * time.Second
	}
	jitter := s.Jitter
	if jitter == nil {
		jitter = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	sleep := s.Sleep
	if sleep == nil {
		sleep = func(ctx context.Context, d time.Duration) {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
			case <-ctx.Done():
			}
		}
	}

	now := s.Now
	if now == nil {
		now = time.Now
	}

	attempt := 0
	for {
		started := now()
		err := runRecovered(ctx, f)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if s.ResetAfter > 0 && now().Sub(started) >= s.ResetAfter {
			attempt = 0 // stable-uptime window: this failure is a fresh first
		}
		if attempt >= s.MaxRestarts {
			return fmt.Errorf("%w after %d attempt(s): %v", ErrRestartBudget, attempt+1, err)
		}
		delay := base << attempt
		if delay > cap || delay <= 0 { // <<-overflow guard
			delay = cap
		}
		delay = delay/2 + time.Duration(jitter.Int63n(int64(delay)))
		if s.OnRestart != nil {
			s.OnRestart(attempt+1, err, delay)
		}
		sleep(ctx, delay)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		attempt++
	}
}

// runRecovered converts a panic in f into an error carrying the stack.
func runRecovered(ctx context.Context, f func(context.Context) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: panic: %v\n%s", r, debug.Stack())
		}
	}()
	return f(ctx)
}
