// Adaptive queue control for the admission path: a CoDel-style controller
// over queue sojourn plus deadline-aware admission. Classic CoDel drops at
// dequeue; here every accepted ticket MUST be applied (accepted ⇒ applied
// is the serving invariant), so all control is exerted at enqueue — the
// controller observes the sojourn of batches leaving the queue and, while
// the queue has been standing above target for a full interval, sheds new
// arrivals with sqrt-spaced pacing until sojourn dips back under target.
package serve

import (
	"math"
	"sync"
	"time"
)

// queueCtl is the per-queue adaptive controller. Callers hold their own
// lock or confine it to one goroutine per queue; the serve layers guard it
// with a small mutex alongside the queue itself.
type queueCtl struct {
	codel    bool          // CoDel shedding armed (drain-rate tracking is always on)
	target   time.Duration // sojourn ceiling (CoDel target)
	interval time.Duration // how long above target before shedding starts

	svcEWMA time.Duration // smoothed per-ticket service time (drain rate⁻¹)

	dropping   bool
	firstAbove time.Time // when sojourn first exceeded target (zero: not above)
	dropNext   time.Time // next scheduled shed while dropping
	dropCount  int       // sheds in the current dropping episode

	lastSojourn time.Duration // most recent observed queue sojourn
}

func newQueueCtl(target, interval time.Duration) *queueCtl {
	codel := target > 0
	if target <= 0 {
		target = 5 * time.Millisecond
	}
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	return &queueCtl{codel: codel, target: target, interval: interval}
}

// observe records a drained batch: n tickets left the queue after waiting
// `sojourn` (head-of-batch wait) and took `svc` to serve. Updates the
// drain-rate estimate and advances the CoDel state machine.
func (q *queueCtl) observe(n int, svc, sojourn time.Duration, now time.Time) {
	if n > 0 && svc > 0 {
		per := svc / time.Duration(n)
		if q.svcEWMA == 0 {
			q.svcEWMA = per
		} else {
			q.svcEWMA = (q.svcEWMA*4 + per) / 5 // EWMA α=0.2
		}
	}
	q.lastSojourn = sojourn
	if !q.codel {
		return
	}
	if sojourn < q.target {
		// Below target: leave any dropping episode and forget the above-
		// target mark.
		q.firstAbove = time.Time{}
		q.dropping = false
		return
	}
	if q.firstAbove.IsZero() {
		q.firstAbove = now.Add(q.interval)
		return
	}
	if !q.dropping && now.After(q.firstAbove) {
		// Standing queue: sojourn has been above target for a full
		// interval. Start shedding, sqrt-paced from the last episode's
		// intensity (classic CoDel re-entry).
		q.dropping = true
		if q.dropCount > 2 {
			q.dropCount -= 2
		} else {
			q.dropCount = 1
		}
		q.dropNext = now
	}
}

// predictWait estimates the queue wait a new arrival at depth `depth`
// would see: measured drain rate × depth. Zero until the first batch has
// been observed.
func (q *queueCtl) predictWait(depth int) time.Duration {
	if depth <= 0 {
		return 0
	}
	return q.svcEWMA * time.Duration(depth)
}

// QueueCtl is the concurrency-safe exported handle over queueCtl, for
// serving layers outside this package (the cluster server keeps one per
// shard queue).
type QueueCtl struct {
	mu sync.Mutex
	q  *queueCtl
}

// NewQueueCtl builds a controller; target <= 0 leaves CoDel shedding off
// (drain-rate tracking and deadline prediction still work).
func NewQueueCtl(target, interval time.Duration) *QueueCtl {
	return &QueueCtl{q: newQueueCtl(target, interval)}
}

// Observe records a drained batch of n tickets: svc is how long serving it
// took, sojourn the head ticket's queue wait.
func (c *QueueCtl) Observe(n int, svc, sojourn time.Duration, now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.q.observe(n, svc, sojourn, now)
}

// PredictWait estimates the queue wait at the given depth.
func (c *QueueCtl) PredictWait(depth int) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.q.predictWait(depth)
}

// Admit runs the enqueue gate; see queueCtl.admit.
func (c *QueueCtl) Admit(now time.Time, depth int, deadline time.Duration) (reason string, retry time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.q.admit(now, depth, deadline)
}

// DrainPerSec reports the measured drain rate (tickets/s; 0 until the
// first observation).
func (c *QueueCtl) DrainPerSec() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.q.svcEWMA <= 0 {
		return 0
	}
	return float64(time.Second) / float64(c.q.svcEWMA)
}

// LastSojourn reports the most recent observed queue sojourn.
func (c *QueueCtl) LastSojourn() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.q.lastSojourn
}

// admit decides whether a new arrival may enqueue at the current depth.
// reason is "" to accept, "deadline" when the predicted wait already
// exceeds the caller's deadline, "codel" when the controller is in a
// dropping episode and this arrival is the paced shed. retry is the
// suggested client backoff (predicted drain of the standing queue).
func (q *queueCtl) admit(now time.Time, depth int, deadline time.Duration) (reason string, retry time.Duration) {
	if deadline > 0 {
		if wait := q.predictWait(depth + 1); wait > deadline {
			return "deadline", q.predictWait(depth)
		}
	}
	if q.dropping && !now.Before(q.dropNext) {
		q.dropCount++
		q.dropNext = now.Add(time.Duration(float64(q.interval) / math.Sqrt(float64(q.dropCount))))
		return "codel", q.predictWait(depth)
	}
	return "", 0
}
