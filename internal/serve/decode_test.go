package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	runtimepkg "nprt/internal/runtime"
	"nprt/internal/sim"
	"nprt/internal/task"
)

// refDecode is the reference semantics: encoding/json with
// DisallowUnknownFields, exactly what the /admit handler used before the
// pooled decoder.
func refDecode(b []byte) (runtimepkg.Event, error) {
	var ev runtimepkg.Event
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ev); err != nil {
		return runtimepkg.Event{}, err
	}
	// Match the hand decoder's trailing-data check.
	if dec.More() {
		return runtimepkg.Event{}, fmt.Errorf("trailing data")
	}
	return ev, nil
}

// handDecode runs the pooled decoder and deep-copies the result out of the
// decoder's scratch before recycling it.
func handDecode(b []byte) (runtimepkg.Event, error) {
	d := getDecoder()
	evs, err := d.decodeBytes(b)
	if err != nil {
		putDecoder(d)
		return runtimepkg.Event{}, err
	}
	ev := evs[0]
	if ev.Task != nil {
		spec := *ev.Task
		ev.Task = &spec
	}
	if ev.Overload != nil {
		over := *ev.Overload
		ev.Overload = &over
	}
	putDecoder(d)
	return ev, nil
}

// decodeCorpus returns events covering every field of the schema, the
// numeric fast/slow paths, and empty/partial shapes.
func decodeCorpus() []runtimepkg.Event {
	return []runtimepkg.Event{
		{},
		{Op: "remove", Name: "w3"},
		{Epoch: 12, Op: "add", Task: &runtimepkg.TaskSpec{
			Criticality: 2,
			Task: task.Task{
				ID: 7, Name: "hot-τ", Period: 40, Release: 3,
				WCETAccurate: 10, WCETImprecise: 3,
				ExecAccurate:            task.Dist{Mean: 6.5, Sigma: 1.25, Min: 1, Max: 10},
				ExecImprecise:           task.Dist{Mean: 2.5, Sigma: 0.5, Min: 0.5, Max: 3},
				Error:                   task.Dist{Mean: 2, Sigma: 0.5},
				MaxConsecutiveImprecise: 4,
			},
		}},
		{Op: "add", Task: &runtimepkg.TaskSpec{Task: task.Task{
			Name: "levels", Period: 80, WCETAccurate: 20, WCETImprecise: 5,
			ExtraLevels: []task.Level{
				{WCET: 12, Exec: task.Dist{Mean: 8, Sigma: 2, Min: 4, Max: 12}},
				{WCET: 8, Error: task.Dist{Mean: 1.5}},
			},
		}}},
		{Op: "overload", Overload: &runtimepkg.OverloadSpec{
			Rates: sim.FaultRates{
				OverrunProb: 0.3, OverrunFactor: 3.5,
				AbortProb: 0.01, AbortPoint: 0.75, DropProb: 0.001,
			},
			Epochs: 6,
		}},
		// Numeric edges: exact fast path at both ends and slow-path
		// fallbacks (mantissa > 2^53, subnormal, huge exponent).
		{Op: "overload", Overload: &runtimepkg.OverloadSpec{
			Rates: sim.FaultRates{
				OverrunProb:   1e22,
				OverrunFactor: 1e-22,
				AbortProb:     9007199254740993, // 2^53+1: fast path must punt
				AbortPoint:    5e-324,
				DropProb:      1.7976931348623157e308,
			},
		}},
	}
}

// TestDecodeEventRoundTrip: for every corpus event, Marshal → hand decode
// must equal Marshal → encoding/json decode.
func TestDecodeEventRoundTrip(t *testing.T) {
	for i, want := range decodeCorpus() {
		buf, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := refDecode(buf)
		if err != nil {
			t.Fatalf("event %d: reference decode: %v", i, err)
		}
		got, err := handDecode(buf)
		if err != nil {
			t.Fatalf("event %d: hand decode %s: %v", i, buf, err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("event %d: hand decode diverges\n json: %s\n hand: %+v\n ref:  %+v", i, buf, got, ref)
		}
	}
}

// TestDecodeEventHandcrafted: JSON shapes Marshal never produces —
// whitespace, case-folded keys, escapes, unicode, null, duplicate keys —
// must match encoding/json byte for byte of behavior.
func TestDecodeEventHandcrafted(t *testing.T) {
	cases := []string{
		"  {  } \n",
		`{"OP": "remove", "NAME": "w1"}`,
		`{"op": "add", "task": {"Criticality": 1, "TASK": {"name": "x", "PERIOD": 40}}}`,
		`{"name": "tabs\tand\nnewlines!"}`,
		`{"name": "smile 😀 pair"}`,
		`{"name": "lone \ud800 surrogate"}`,
		`{"name": "slash\/quote\""}`,
		"{\"name\": \"raw\xffbyte\"}",
		`{"op": null, "task": null, "overload": null, "name": null, "epoch": null}`,
		`{"op": "add", "op": "remove"}`,
		`{"epoch": 9223372036854775807}`,
		`{"epoch": -9223372036854775808}`,
		`{"overload": {"rates": {"OverrunProb": -0.0, "DropProb": 0}, "epochs": 0}}`,
		`{"overload": {"rates": {}, "epochs": 3}}`,
		`{"task": {"task": {"ExtraLevels": []}}}`,
		`{"task": {"task": {"ExtraLevels": null}}}`,
		`{"task": {"task": {"ExecAccurate": {"Mean": 1.5e2, "Sigma": 2E-1, "Min": 0.125, "Max": 100.0}}}}`,
	}
	for _, src := range cases {
		ref, refErr := refDecode([]byte(src))
		got, gotErr := handDecode([]byte(src))
		if refErr != nil {
			t.Fatalf("case %q: reference decode unexpectedly failed: %v", src, refErr)
		}
		if gotErr != nil {
			t.Errorf("case %q: hand decode failed: %v", src, gotErr)
			continue
		}
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("case %q diverges\n hand: %#v\n ref:  %#v", src, got, ref)
		}
	}
}

// TestDecodeEventInvalid: everything encoding/json rejects, the hand
// decoder must reject too — nothing malformed may reach the journal.
func TestDecodeEventInvalid(t *testing.T) {
	cases := []string{
		``,
		`not json`,
		`[]`,
		`"string"`,
		`{`,
		`{"op": "add"`,
		`{"op": }`,
		`{"op": "add",}`,
		`{"unknown": 1}`,
		`{"task": {"typo": 1}}`,
		`{"task": {"task": {"frobnicate": 1}}}`,
		`{"overload": {"rates": {"Typo": 0.1}}}`,
		`{"epoch": 1.5}`,
		`{"epoch": 1e3}`,
		`{"epoch": 01}`,
		`{"epoch": 9223372036854775808}`,
		`{"epoch": -9223372036854775809}`,
		`{"epoch": +1}`,
		`{"epoch": .5}`,
		`{"epoch": 1.}`,
		`{"epoch": 1e}`,
		`{"name": "unterminated`,
		`{"name": "bad \q escape"}`,
		`{"name": "bad \u12 escape"}`,
		"{\"name\": \"ctrl \x01 char\"}",
		`{"op": "add"} trailing`,
		`{"task": {"task": {"ExtraLevels": [{"WCET": 1},]}}}`,
	}
	for _, src := range cases {
		if _, err := refDecode([]byte(src)); err == nil {
			t.Fatalf("case %q: encoding/json accepts it — not an invalid case", src)
		}
		if _, err := handDecode([]byte(src)); err == nil {
			t.Errorf("case %q: hand decoder accepted invalid input", src)
		}
	}
}

// hotEvent is the steady-state /admit payload: known op, repeated task
// name, full dists, no extra levels.
func hotEvent(name string) []byte {
	return []byte(`{"op": "add", "task": {"criticality": 1, "task": {
		"Name": "` + name + `", "Period": 40, "WCETAccurate": 10, "WCETImprecise": 3,
		"ExecAccurate": {"Mean": 6.5, "Sigma": 1.25, "Min": 1, "Max": 10},
		"ExecImprecise": {"Mean": 2.5, "Sigma": 0.5, "Min": 0.5, "Max": 3},
		"Error": {"Mean": 2, "Sigma": 0.5}}}}`)
}

// TestDecodeEventZeroAlloc is the acceptance criterion: the single-event
// hot path decodes with zero allocations once names are interned.
func TestDecodeEventZeroAlloc(t *testing.T) {
	d := getDecoder()
	defer putDecoder(d)
	payload := hotEvent("w1")
	if _, err := d.decodeBytes(payload); err != nil { // warm the intern table
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := d.decodeBytes(payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("hot-path decode allocates %.1f times per event, want 0", allocs)
	}
}

func BenchmarkDecodeEvent(b *testing.B) {
	payload := hotEvent("w1")
	b.Run("pooled", func(b *testing.B) {
		d := getDecoder()
		defer putDecoder(d)
		if _, err := d.decodeBytes(payload); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := d.decodeBytes(payload); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("stdlib", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var ev runtimepkg.Event
			dec := json.NewDecoder(bytes.NewReader(payload))
			dec.DisallowUnknownFields()
			if err := dec.Decode(&ev); err != nil {
				b.Fatal(err)
			}
		}
	})
}
