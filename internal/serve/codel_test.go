package serve

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestCoDelDrainRateAndPredictWait pins the drain-rate estimator through
// the exported QueueCtl surface: per-ticket EWMA (α=0.2), linear wait
// prediction, and the tickets/s conversion the serve layers expose.
func TestCoDelDrainRateAndPredictWait(t *testing.T) {
	c := NewQueueCtl(0, 0) // target 0: shedding off, estimation on
	now := time.Now()
	if got := c.PredictWait(10); got != 0 {
		t.Fatalf("predictWait before any observation = %v, want 0", got)
	}
	if got := c.DrainPerSec(); got != 0 {
		t.Fatalf("drainPerSec before any observation = %v, want 0", got)
	}

	// First batch: 2 tickets in 20ms → 10ms/ticket seeds the EWMA.
	c.Observe(2, 20*time.Millisecond, 3*time.Millisecond, now)
	if got := c.PredictWait(3); got != 30*time.Millisecond {
		t.Fatalf("predictWait(3) after seed = %v, want 30ms", got)
	}
	if got := c.LastSojourn(); got != 3*time.Millisecond {
		t.Fatalf("lastSojourn = %v, want 3ms", got)
	}

	// Second batch: 20ms/ticket → EWMA (10*4+20)/5 = 12ms.
	c.Observe(1, 20*time.Millisecond, 0, now)
	if got := c.PredictWait(3); got != 36*time.Millisecond {
		t.Fatalf("predictWait(3) after EWMA step = %v, want 36ms", got)
	}
	want := float64(time.Second) / float64(12*time.Millisecond)
	if got := c.DrainPerSec(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("drainPerSec = %v, want %v", got, want)
	}
	if got := c.PredictWait(0); got != 0 {
		t.Fatalf("predictWait(0) = %v, want 0", got)
	}
}

// TestCoDelDeadlineAdmit: the enqueue gate sheds exactly when the
// predicted wait at the arrival's own depth exceeds the client deadline,
// and the retry hint is the predicted drain of the standing queue.
func TestCoDelDeadlineAdmit(t *testing.T) {
	c := NewQueueCtl(0, 0)
	now := time.Now()
	// No estimate yet: nothing can be predicted, nothing is shed.
	if reason, _ := c.Admit(now, 100, time.Millisecond); reason != "" {
		t.Fatalf("shed %q with no drain estimate", reason)
	}
	c.Observe(1, 10*time.Millisecond, 0, now) // 10ms/ticket

	if reason, retry := c.Admit(now, 4, 20*time.Millisecond); reason != "deadline" || retry != 40*time.Millisecond {
		t.Fatalf("admit(depth 4, deadline 20ms) = %q/%v, want deadline/40ms", reason, retry)
	}
	if reason, _ := c.Admit(now, 4, 60*time.Millisecond); reason != "" {
		t.Fatalf("admit(depth 4, deadline 60ms) shed %q, want accept (wait 50ms)", reason)
	}
	if reason, _ := c.Admit(now, 4, 0); reason != "" {
		t.Fatalf("admit with no deadline shed %q", reason)
	}
}

// TestCoDelDroppingEpisode drives the standing-queue state machine:
// sojourn above target for a full interval starts a dropping episode,
// sheds are sqrt-paced within it, and one below-target observation ends
// it immediately.
func TestCoDelDroppingEpisode(t *testing.T) {
	const (
		target   = 5 * time.Millisecond
		interval = 100 * time.Millisecond
	)
	c := NewQueueCtl(target, interval)
	t0 := time.Now()

	// Above target, but not yet for a full interval: no shedding.
	c.Observe(1, time.Millisecond, 10*time.Millisecond, t0)
	if reason, _ := c.Admit(t0, 1, 0); reason != "" {
		t.Fatalf("shed %q before the interval elapsed", reason)
	}

	// Still above target past the grace interval: episode starts.
	t1 := t0.Add(interval + 50*time.Millisecond)
	c.Observe(1, time.Millisecond, 10*time.Millisecond, t1)
	if reason, _ := c.Admit(t1, 1, 0); reason != "codel" {
		t.Fatalf("standing queue not shed: %q", reason)
	}
	// The next shed is sqrt-paced: interval/sqrt(2) ≈ 70.7ms out. An
	// arrival well inside that window passes, one after it is shed.
	if reason, _ := c.Admit(t1.Add(10*time.Millisecond), 1, 0); reason != "" {
		t.Fatalf("paced window violated: shed %q 10ms into a ~70ms gap", reason)
	}
	if reason, _ := c.Admit(t1.Add(75*time.Millisecond), 1, 0); reason != "codel" {
		t.Fatalf("second paced shed missing: %q", reason)
	}

	// One below-target drain ends the episode and clears the mark.
	t2 := t1.Add(80 * time.Millisecond)
	c.Observe(1, time.Millisecond, time.Millisecond, t2)
	if reason, _ := c.Admit(t2, 1, 0); reason != "" {
		t.Fatalf("shed %q after sojourn recovered", reason)
	}
}

// TestRetryAfterCeilingAndMs pins the 503 hint encoding: Retry-After is
// the hint in whole seconds, ceiled, never below 1 (a sub-second hint
// must not round to "retry immediately"), while Retry-After-Ms carries
// the real value for clients that can honor milliseconds.
func TestRetryAfterCeilingAndMs(t *testing.T) {
	s := New(Options{RetryAfter: 3 * time.Second})
	cases := []struct {
		hint     time.Duration
		secs, ms string
	}{
		{1500 * time.Millisecond, "2", "1500"},
		{200 * time.Millisecond, "1", "200"},
		{2 * time.Second, "2", "2000"},
		{500 * time.Microsecond, "1", "1"},
		{0, "3", "3000"}, // falls back to the static option
	}
	for _, tc := range cases {
		w := httptest.NewRecorder()
		s.unavailableHint(w, "shed", tc.hint)
		if w.Code != http.StatusServiceUnavailable {
			t.Fatalf("hint %v: status %d, want 503", tc.hint, w.Code)
		}
		if got := w.Header().Get("Retry-After"); got != tc.secs {
			t.Errorf("hint %v: Retry-After %q, want %q", tc.hint, got, tc.secs)
		}
		if got := w.Header().Get("Retry-After-Ms"); got != tc.ms {
			t.Errorf("hint %v: Retry-After-Ms %q, want %q", tc.hint, got, tc.ms)
		}
	}
}

// TestDeadlineShedAtAdmit covers the handler path: an /admit carrying
// X-Deadline-Ms shorter than the predicted queue wait is shed at the door
// (503, named reason, counter, nothing applied), while one with a
// generous deadline rides the normal accepted-⇒-applied contract.
func TestDeadlineShedAtAdmit(t *testing.T) {
	s := New(Options{QueueDepth: 2, RequestTimeout: 10 * time.Second, RetryAfter: 3 * time.Second})
	st := openTestStore(t)
	// White-box attach without the engine, with a pre-seeded drain-rate
	// estimate of 100ms/ticket — predicted wait at depth 1 is 100ms.
	s.store = st
	s.ready.Store(true)
	s.publish("")
	s.ctlMu.Lock()
	s.ctl.observe(1, 100*time.Millisecond, 0, time.Now())
	s.ctlMu.Unlock()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req, err := http.NewRequest("POST", ts.URL+"/admit", strings.NewReader(string(addEventJSON(t, "tight"))))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Deadline-Ms", "10")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("tight-deadline admit: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" || resp.Header.Get("Retry-After-Ms") == "" {
		t.Error("deadline shed missing Retry-After hints")
	}
	if got := s.deadlineShed.Load(); got != 1 {
		t.Fatalf("deadlineShed counter = %d, want 1", got)
	}
	if got := st.EventsApplied(); got != 0 {
		t.Fatalf("shed admission reached the store: %d events applied", got)
	}

	// A generous deadline is admitted and — once the engine runs — applied.
	done := make(chan int, 1)
	go func() {
		req, err := http.NewRequest("POST", ts.URL+"/admit", strings.NewReader(string(addEventJSON(t, "roomy"))))
		if err != nil {
			done <- 0
			return
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Deadline-Ms", "60000")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			done <- 0
			return
		}
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	deadline := time.Now().Add(5 * time.Second)
	for len(s.queue) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("roomy-deadline admission never enqueued")
		}
		time.Sleep(time.Millisecond)
	}
	go s.engine()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if code := <-done; code != http.StatusOK {
		t.Fatalf("roomy-deadline admit: %d, want 200", code)
	}
	if got := st.EventsApplied(); got != 1 {
		t.Fatalf("store applied %d events, want 1", got)
	}
}
