// Package trace records executed schedules and checks the invariants every
// valid non-preemptive uniprocessor schedule must satisfy. The validator is
// the shared oracle of the test suite: every scheduling policy in nprt is
// checked against it, so a policy bug surfaces as a named invariant
// violation instead of a silently wrong error statistic.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"nprt/internal/task"
)

// FaultTag marks how an execution deviated from the fault-free model. The
// zero value (FaultNone) is a clean run, so pre-existing traces and tests
// are unaffected.
type FaultTag uint8

const (
	// FaultNone is a clean execution.
	FaultNone FaultTag = iota
	// FaultOverrun marks an execution that ran past its declared WCET
	// (a budget-model violation that was allowed to complete).
	FaultOverrun
	// FaultKilled marks a job a watchdog terminated at its declared WCET
	// budget; the job produced no result.
	FaultKilled
	// FaultDied marks a job that crashed mid-execution and produced no
	// result.
	FaultDied
)

// String names the tag for violation messages and CSV export.
func (f FaultTag) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultOverrun:
		return "overrun"
	case FaultKilled:
		return "killed"
	case FaultDied:
		return "died"
	}
	return fmt.Sprintf("fault%d", uint8(f))
}

// Entry is one executed job.
type Entry struct {
	Job    task.Job
	Mode   task.Mode
	Start  task.Time
	Finish task.Time
	Error  float64  // sampled imprecision error; 0 for accurate runs
	Fault  FaultTag // FaultNone unless fault injection marked the run
}

// Duration returns the executed time of the entry.
func (e Entry) Duration() task.Time { return e.Finish - e.Start }

// Trace is an append-only list of executed jobs in dispatch order.
type Trace struct {
	Entries []Entry
}

// Append records one execution.
func (tr *Trace) Append(e Entry) { tr.Entries = append(tr.Entries, e) }

// Len returns the number of recorded executions.
func (tr *Trace) Len() int { return len(tr.Entries) }

// Violation is one broken schedule invariant.
type Violation struct {
	Kind  string // "overlap", "early-start", "deadline", "duplicate", "negative-duration", "wcet", "fault", "fault-label", "unknown-task"
	Index int    // entry index in the trace
	Msg   string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s at entry %d: %s", v.Kind, v.Index, v.Msg)
}

// Options controls which invariants Validate enforces.
type Options struct {
	// RequireDeadlines makes a finish past the deadline a violation. The
	// EDF-Accurate baseline intentionally misses deadlines, so it validates
	// with this off.
	RequireDeadlines bool
	// WCETBounds checks Duration <= the mode's WCET for the job's task.
	// Set when execution times are sampled with the WCET cap.
	WCETBounds bool
	// Set must be provided when WCETBounds is on.
	Set *task.Set
	// AllowFaults accepts entries carrying a fault tag and checks them
	// against the fault model instead: an overrun entry must exceed its
	// mode's WCET (it is exempt from the WCET bound), killed/died entries
	// must still respect it, and faulted entries are exempt from the
	// deadline requirement (a faulted job never delivers a timely result;
	// miss accounting happens in the simulator). When off — the default —
	// any fault tag is itself a violation, preserving the strict pre-fault
	// oracle.
	AllowFaults bool
}

// Validate checks the non-preemptive uniprocessor invariants:
//
//   - entries are in non-decreasing start order and never overlap
//     (non-preemption: once started, a job runs to completion);
//   - no job starts before its release;
//   - durations are positive;
//   - no job executes twice;
//   - optionally, every job finishes by its deadline;
//   - optionally, no execution exceeds its mode's WCET.
//
// It returns all violations found (nil when the trace is valid).
func Validate(tr *Trace, opt Options) []Violation {
	var vs []Violation
	seen := make(map[task.JobKey]int, len(tr.Entries))
	var prevFinish task.Time
	for i, e := range tr.Entries {
		if e.Finish <= e.Start {
			vs = append(vs, Violation{"negative-duration", i,
				fmt.Sprintf("%v start=%d finish=%d", e.Job, e.Start, e.Finish)})
		}
		if i > 0 && e.Start < prevFinish {
			vs = append(vs, Violation{"overlap", i,
				fmt.Sprintf("%v starts at %d before previous finish %d", e.Job, e.Start, prevFinish)})
		}
		if e.Start < e.Job.Release {
			vs = append(vs, Violation{"early-start", i,
				fmt.Sprintf("%v starts at %d before release %d", e.Job, e.Start, e.Job.Release)})
		}
		if opt.RequireDeadlines && e.Finish > e.Job.Deadline &&
			!(opt.AllowFaults && e.Fault != FaultNone) {
			vs = append(vs, Violation{"deadline", i,
				fmt.Sprintf("%v finishes at %d after deadline %d", e.Job, e.Finish, e.Job.Deadline)})
		}
		if j, dup := seen[e.Job.Key()]; dup {
			vs = append(vs, Violation{"duplicate", i,
				fmt.Sprintf("%v already executed at entry %d", e.Job, j)})
		} else {
			seen[e.Job.Key()] = i
		}
		if e.Fault != FaultNone && !opt.AllowFaults {
			vs = append(vs, Violation{"fault", i,
				fmt.Sprintf("%v carries fault tag %s but faults are not allowed", e.Job, e.Fault)})
		}
		if opt.WCETBounds && opt.Set != nil {
			// A trace from an untrusted source (or a mutated one under fuzzing)
			// can reference tasks the set does not contain; report it instead
			// of indexing out of range.
			if e.Job.TaskID < 0 || e.Job.TaskID >= opt.Set.Len() {
				vs = append(vs, Violation{"unknown-task", i,
					fmt.Sprintf("%v references task %d outside set of %d tasks",
						e.Job, e.Job.TaskID, opt.Set.Len())})
			} else {
				w := opt.Set.Task(e.Job.TaskID).WCET(e.Mode)
				switch {
				case opt.AllowFaults && e.Fault == FaultOverrun:
					// An overrun entry is exempt from the bound but must actually
					// exceed it, or the tag is a lie.
					if e.Duration() <= w {
						vs = append(vs, Violation{"fault-label", i,
							fmt.Sprintf("%v tagged overrun but ran %d <= WCET %d in %s mode",
								e.Job, e.Duration(), w, e.Mode)})
					}
				case e.Duration() > w:
					vs = append(vs, Violation{"wcet", i,
						fmt.Sprintf("%v ran %d > WCET %d in %s mode", e.Job, e.Duration(), w, e.Mode)})
				}
			}
		}
		if e.Finish > prevFinish {
			prevFinish = e.Finish
		}
	}
	return vs
}

// DeadlineMisses counts entries finishing after their deadline.
func (tr *Trace) DeadlineMisses() int {
	n := 0
	for _, e := range tr.Entries {
		if e.Finish > e.Job.Deadline {
			n++
		}
	}
	return n
}

// TotalError sums the sampled errors over all entries.
func (tr *Trace) TotalError() float64 {
	s := 0.0
	for _, e := range tr.Entries {
		s += e.Error
	}
	return s
}

// ModeCounts returns how many entries ran in each mode.
func (tr *Trace) ModeCounts() (accurate, imprecise int) {
	for _, e := range tr.Entries {
		if e.Mode == task.Accurate {
			accurate++
		} else {
			imprecise++
		}
	}
	return accurate, imprecise
}

// Busy returns the summed execution time of all entries.
func (tr *Trace) Busy() task.Time {
	var b task.Time
	for _, e := range tr.Entries {
		b += e.Duration()
	}
	return b
}

// Gantt renders an ASCII Gantt chart of the first `limit` entries (all when
// limit <= 0), one row per task, `scale` virtual time units per character.
// Accurate executions draw '#', imprecise 'o'. Intended for debugging and
// the CLI's --gantt flag, not for machine consumption.
func Gantt(tr *Trace, s *task.Set, scale task.Time, limit int) string {
	if scale <= 0 {
		scale = 1
	}
	entries := tr.Entries
	if limit > 0 && len(entries) > limit {
		entries = entries[:limit]
	}
	if len(entries) == 0 {
		return "(empty trace)\n"
	}
	var horizon task.Time
	for _, e := range entries {
		if e.Finish > horizon {
			horizon = e.Finish
		}
	}
	width := int(horizon/scale) + 1
	rows := make([][]byte, s.Len())
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	for _, e := range entries {
		ch := byte('#')
		if e.Mode == task.Imprecise {
			ch = 'o'
		}
		from, to := int(e.Start/scale), int((e.Finish-1)/scale)
		for c := from; c <= to && c < width; c++ {
			rows[e.Job.TaskID][c] = ch
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "time 0..%d (1 char = %d)\n", horizon, scale)
	order := make([]int, s.Len())
	for i := range order {
		order[i] = i
	}
	sort.Ints(order)
	for _, i := range order {
		fmt.Fprintf(&b, "%-12s |%s|\n", s.Task(i).Name, rows[i])
	}
	return b.String()
}

// WriteCSV emits the trace as CSV (one row per executed job) for external
// analysis: task, index, mode, release, start, finish, deadline, error,
// response time and lateness.
func (tr *Trace) WriteCSV(w io.Writer, s *task.Set) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"task", "index", "mode", "release", "start",
		"finish", "deadline", "error", "response", "lateness", "fault"}); err != nil {
		return err
	}
	for _, e := range tr.Entries {
		rec := []string{
			s.Task(e.Job.TaskID).Name,
			strconv.Itoa(e.Job.Index),
			e.Mode.String(),
			strconv.FormatInt(e.Job.Release, 10),
			strconv.FormatInt(e.Start, 10),
			strconv.FormatInt(e.Finish, 10),
			strconv.FormatInt(e.Job.Deadline, 10),
			strconv.FormatFloat(e.Error, 'f', 6, 64),
			strconv.FormatInt(e.Finish-e.Job.Release, 10),
			strconv.FormatInt(e.Finish-e.Job.Deadline, 10),
			e.Fault.String(),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
