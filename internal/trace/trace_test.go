package trace

import (
	"strings"
	"testing"

	"nprt/internal/task"
)

func testSet(t *testing.T) *task.Set {
	t.Helper()
	s, err := task.New([]task.Task{
		{Name: "a", Period: 10, WCETAccurate: 4, WCETImprecise: 2},
		{Name: "b", Period: 20, WCETAccurate: 6, WCETImprecise: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func entry(s *task.Set, taskID, idx int, m task.Mode, start, finish task.Time) Entry {
	return Entry{Job: s.Job(taskID, idx), Mode: m, Start: start, Finish: finish}
}

func TestValidTraceHasNoViolations(t *testing.T) {
	s := testSet(t)
	tr := &Trace{}
	tr.Append(entry(s, 0, 0, task.Accurate, 0, 4))
	tr.Append(entry(s, 1, 0, task.Imprecise, 4, 7))
	tr.Append(entry(s, 0, 1, task.Accurate, 10, 14))
	vs := Validate(tr, Options{RequireDeadlines: true, WCETBounds: true, Set: s})
	if len(vs) != 0 {
		t.Errorf("valid trace produced violations: %v", vs)
	}
}

func TestOverlapDetected(t *testing.T) {
	s := testSet(t)
	tr := &Trace{}
	tr.Append(entry(s, 0, 0, task.Accurate, 0, 4))
	tr.Append(entry(s, 1, 0, task.Accurate, 3, 9)) // starts before 4
	vs := Validate(tr, Options{})
	if len(vs) != 1 || vs[0].Kind != "overlap" {
		t.Errorf("want one overlap violation, got %v", vs)
	}
	if !strings.Contains(vs[0].String(), "overlap") {
		t.Errorf("String: %q", vs[0].String())
	}
}

func TestEarlyStartDetected(t *testing.T) {
	s := testSet(t)
	tr := &Trace{}
	tr.Append(entry(s, 0, 1, task.Accurate, 5, 9)) // release is 10
	vs := Validate(tr, Options{})
	if len(vs) != 1 || vs[0].Kind != "early-start" {
		t.Errorf("want early-start, got %v", vs)
	}
}

func TestDeadlineOnlyWhenRequired(t *testing.T) {
	s := testSet(t)
	tr := &Trace{}
	tr.Append(entry(s, 0, 0, task.Accurate, 8, 12)) // deadline 10
	if vs := Validate(tr, Options{}); len(vs) != 0 {
		t.Errorf("deadline should not be checked by default: %v", vs)
	}
	vs := Validate(tr, Options{RequireDeadlines: true})
	if len(vs) != 1 || vs[0].Kind != "deadline" {
		t.Errorf("want deadline violation, got %v", vs)
	}
}

func TestDuplicateDetected(t *testing.T) {
	s := testSet(t)
	tr := &Trace{}
	tr.Append(entry(s, 0, 0, task.Accurate, 0, 4))
	tr.Append(entry(s, 0, 0, task.Imprecise, 4, 6))
	vs := Validate(tr, Options{})
	if len(vs) != 1 || vs[0].Kind != "duplicate" {
		t.Errorf("want duplicate, got %v", vs)
	}
}

func TestNegativeDurationDetected(t *testing.T) {
	s := testSet(t)
	tr := &Trace{}
	tr.Append(entry(s, 0, 0, task.Accurate, 4, 4))
	vs := Validate(tr, Options{})
	if len(vs) != 1 || vs[0].Kind != "negative-duration" {
		t.Errorf("want negative-duration, got %v", vs)
	}
}

func TestWCETBoundDetected(t *testing.T) {
	s := testSet(t)
	tr := &Trace{}
	tr.Append(entry(s, 0, 0, task.Imprecise, 0, 3)) // imprecise WCET is 2
	vs := Validate(tr, Options{WCETBounds: true, Set: s})
	if len(vs) != 1 || vs[0].Kind != "wcet" {
		t.Errorf("want wcet violation, got %v", vs)
	}
}

func TestAggregates(t *testing.T) {
	s := testSet(t)
	tr := &Trace{}
	tr.Append(Entry{Job: s.Job(0, 0), Mode: task.Imprecise, Start: 0, Finish: 2, Error: 1.5})
	tr.Append(Entry{Job: s.Job(1, 0), Mode: task.Accurate, Start: 2, Finish: 8})
	tr.Append(Entry{Job: s.Job(0, 1), Mode: task.Imprecise, Start: 10, Finish: 12, Error: 0.5})
	if tr.Len() != 3 {
		t.Errorf("Len = %d", tr.Len())
	}
	if tr.TotalError() != 2.0 {
		t.Errorf("TotalError = %g", tr.TotalError())
	}
	acc, imp := tr.ModeCounts()
	if acc != 1 || imp != 2 {
		t.Errorf("ModeCounts = %d/%d", acc, imp)
	}
	if tr.Busy() != 10 {
		t.Errorf("Busy = %d", tr.Busy())
	}
	if tr.DeadlineMisses() != 0 {
		t.Errorf("DeadlineMisses = %d", tr.DeadlineMisses())
	}
	tr.Append(Entry{Job: s.Job(0, 2), Mode: task.Accurate, Start: 28, Finish: 32})
	if tr.DeadlineMisses() != 1 {
		t.Errorf("DeadlineMisses after late job = %d", tr.DeadlineMisses())
	}
}

func TestGantt(t *testing.T) {
	s := testSet(t)
	tr := &Trace{}
	tr.Append(entry(s, 0, 0, task.Accurate, 0, 4))
	tr.Append(entry(s, 1, 0, task.Imprecise, 4, 7))
	out := Gantt(tr, s, 1, 0)
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Fatalf("missing task rows:\n%s", out)
	}
	if !strings.Contains(out, "####") {
		t.Errorf("accurate glyphs missing:\n%s", out)
	}
	if !strings.Contains(out, "ooo") {
		t.Errorf("imprecise glyphs missing:\n%s", out)
	}
	if got := Gantt(&Trace{}, s, 1, 0); !strings.Contains(got, "empty") {
		t.Errorf("empty trace rendering: %q", got)
	}
	// Limit and scale paths.
	out = Gantt(tr, s, 2, 1)
	if strings.Contains(out, "o") {
		t.Errorf("limit=1 should drop second entry:\n%s", out)
	}
	// scale <= 0 falls back to 1 without panicking.
	_ = Gantt(tr, s, 0, 0)
}

func TestValidateMultipleViolationsReported(t *testing.T) {
	s := testSet(t)
	tr := &Trace{}
	tr.Append(entry(s, 0, 1, task.Accurate, 5, 5)) // early start + zero duration
	vs := Validate(tr, Options{})
	kinds := map[string]bool{}
	for _, v := range vs {
		kinds[v.Kind] = true
	}
	if !kinds["early-start"] || !kinds["negative-duration"] {
		t.Errorf("expected both violations, got %v", vs)
	}
}

func TestWriteCSV(t *testing.T) {
	s := testSet(t)
	tr := &Trace{}
	tr.Append(Entry{Job: s.Job(0, 0), Mode: task.Imprecise, Start: 1, Finish: 3, Error: 0.5})
	tr.Append(Entry{Job: s.Job(1, 0), Mode: task.Accurate, Start: 3, Finish: 9})
	var b strings.Builder
	if err := tr.WriteCSV(&b, s); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines:\n%s", len(lines), b.String())
	}
	if !strings.HasPrefix(lines[1], "a,0,imprecise,0,1,3,10,0.500000,3,-7") {
		t.Errorf("row 1 = %q", lines[1])
	}
	if !strings.Contains(lines[2], "b,0,accurate") {
		t.Errorf("row 2 = %q", lines[2])
	}
}
