package trace_test

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"nprt/internal/task"
	"nprt/internal/trace"
)

// FuzzValidate decodes arbitrary bytes into a mutated trace — out-of-range
// task IDs, reversed intervals, bogus modes and fault tags included — and
// checks that the validator classifies rather than crashes, under every
// option combination, and that validation is a pure function of its input.
func FuzzValidate(f *testing.F) {
	// One well-formed two-entry trace and one garbage blob as seeds; the
	// fuzzer mutates from there.
	var seed []byte
	for _, e := range [][7]int64{
		{0, 0, 0, 0, 3, 0, 10},  // task 0 job 0: start 0 finish 3
		{1, 0, 1, 3, 10, 0, 20}, // task 1 job 0: start 3 finish 10
	} {
		for _, v := range e {
			seed = binary.LittleEndian.AppendUint64(seed, uint64(v))
		}
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x01, 0x80, 0xff, 0x00}, 40))

	s, err := task.New([]task.Task{
		{Name: "a", Period: 10, WCETAccurate: 4, WCETImprecise: 2, Error: task.Dist{Mean: 1}},
		{Name: "b", Period: 20, WCETAccurate: 8, WCETImprecise: 3, Error: task.Dist{Mean: 2}},
	})
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		tr := decodeFuzzTrace(data)
		for _, opt := range []trace.Options{
			{},
			{RequireDeadlines: true},
			{WCETBounds: true, Set: s},
			{RequireDeadlines: true, WCETBounds: true, Set: s},
			{RequireDeadlines: true, WCETBounds: true, Set: s, AllowFaults: true},
			{WCETBounds: true}, // Set missing: bounds check must degrade, not crash
		} {
			vs1 := trace.Validate(tr, opt)
			vs2 := trace.Validate(tr, opt)
			if !reflect.DeepEqual(vs1, vs2) {
				t.Fatalf("validation not deterministic under %+v", opt)
			}
			for _, v := range vs1 {
				if v.Index < 0 || v.Index >= tr.Len() {
					t.Fatalf("violation indexes entry %d outside trace of %d", v.Index, tr.Len())
				}
			}
		}
		// The derived statistics must also tolerate arbitrary entries.
		_ = tr.DeadlineMisses()
		_ = tr.TotalError()
		_ = tr.Busy()
		// WriteCSV's contract requires the trace's tasks to exist in the set.
		inRange := true
		for _, e := range tr.Entries {
			if e.Job.TaskID < 0 || e.Job.TaskID >= s.Len() {
				inRange = false
				break
			}
		}
		if inRange {
			if err := tr.WriteCSV(&bytes.Buffer{}, s); err != nil {
				t.Fatalf("WriteCSV: %v", err)
			}
		}
	})
}

// decodeFuzzTrace deterministically maps bytes to trace entries: seven int64
// fields per entry (task, index, mode, start, finish, fault, deadline).
func decodeFuzzTrace(data []byte) *trace.Trace {
	tr := &trace.Trace{}
	const fields = 7
	for len(data) >= fields*8 && tr.Len() < 256 {
		var v [fields]int64
		for i := range v {
			v[i] = int64(binary.LittleEndian.Uint64(data[i*8:]))
		}
		data = data[fields*8:]
		tr.Append(trace.Entry{
			Job: task.Job{
				TaskID:   int(v[0] % 8), // mostly in range, sometimes negative/out of range
				Index:    int(v[1] % 1024),
				Release:  v[3] % 4096,
				Deadline: v[6] % 4096,
			},
			Mode:   task.Mode(v[2] % 3),
			Start:  v[3] % 4096,
			Finish: v[4] % 4096,
			Error:  float64(v[1]%100) / 10,
			Fault:  trace.FaultTag(v[5] % 6),
		})
	}
	return tr
}
