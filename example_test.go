package nprt_test

import (
	"fmt"

	"nprt"
)

// The package-level example: build a set that accurate-only scheduling
// cannot handle, verify the imprecise-mode guarantee, and run EDF+ESR.
func Example() {
	set, err := nprt.NewTaskSet([]nprt.Task{
		{Name: "video", Period: 20, WCETAccurate: 12, WCETImprecise: 4,
			Error: nprt.Dist{Mean: 2}},
		{Name: "audio", Period: 40, WCETAccurate: 16, WCETImprecise: 5,
			Error: nprt.Dist{Mean: 1}},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("accurate feasible: ", nprt.Schedulable(set, nprt.Accurate))
	fmt.Println("imprecise feasible:", nprt.Schedulable(set, nprt.Imprecise))

	res, err := nprt.Simulate(set, nprt.NewEDFESR(), nprt.SimConfig{Hyperperiods: 100})
	if err != nil {
		panic(err)
	}
	fmt.Println("deadline misses:   ", res.Misses.Events)
	// Output:
	// accurate feasible:  false
	// imprecise feasible: true
	// deadline misses:    0
}

// CheckSchedulability exposes the γ factors behind ESR's individual slack.
func ExampleCheckSchedulability() {
	set, _ := nprt.NewTaskSet([]nprt.Task{
		{Name: "a", Period: 10, WCETAccurate: 5, WCETImprecise: 2},
		{Name: "b", Period: 30, WCETAccurate: 20, WCETImprecise: 6},
	})
	rep := nprt.CheckSchedulability(set, nprt.Imprecise)
	fmt.Printf("schedulable=%v γ_min=%.3f\n", rep.Schedulable, rep.GammaMin)
	// Output:
	// schedulable=true γ_min=1.375
}

// The offline collaborative methods wrap an offline plan in online
// adjustment; with worst-case execution the plan is followed verbatim.
func ExampleNewILPOA() {
	set, _ := nprt.NewTaskSet([]nprt.Task{
		{Name: "a", Period: 10, WCETAccurate: 6, WCETImprecise: 2,
			Error: nprt.Dist{Mean: 1}},
		{Name: "b", Period: 10, WCETAccurate: 5, WCETImprecise: 2,
			Error: nprt.Dist{Mean: 10}},
	})
	p, err := nprt.NewILPOA(set)
	if err != nil {
		panic(err)
	}
	res, err := nprt.Simulate(set, p, nprt.SimConfig{Hyperperiods: 1})
	if err != nil {
		panic(err)
	}
	// The optimizer protects the error-10 task: it runs accurate, the
	// error-1 task absorbs the imprecision.
	fmt.Printf("mean error %.1f, misses %d\n", res.MeanError(), res.Misses.Events)
	// Output:
	// mean error 0.5, misses 0
}

// DP(C) plans accuracy so consecutive-imprecision budgets hold.
func ExampleSolveCumulativeDP() {
	set, _ := nprt.NewTaskSet([]nprt.Task{
		{Name: "a", Period: 10, WCETAccurate: 6, WCETImprecise: 2,
			Error: nprt.Dist{Mean: 1}, MaxConsecutiveImprecise: 1},
		{Name: "b", Period: 10, WCETAccurate: 6, WCETImprecise: 2,
			Error: nprt.Dist{Mean: 1}, MaxConsecutiveImprecise: 1},
	})
	plan, stats, err := nprt.SolveCumulativeDP(set, nprt.CumulativeDPOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println("feasible:", stats.Feasible)
	fmt.Println("jobs planned:", len(plan.Jobs))
	// Output:
	// feasible: true
	// jobs planned: 4
}
