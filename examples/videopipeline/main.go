// Video pipeline: the paper's motivating scenario (§I, §II-C). A decoder
// runs periodic IDCT tasks over several frame streams; deadline misses
// cause visible stutter, while a truncated (imprecise) inverse transform
// only perturbs a few pixels — an error that does not carry over to the
// next frame (the independent-error model).
//
// The example builds the paper's IDCT testcase from real measured
// transform costs and errors, shows that accurate-only scheduling is
// infeasible, and compares EDF-Imprecise against the collaborative
// ILP+Post+OA method.
//
//	go run ./examples/videopipeline
package main

import (
	"fmt"
	"log"

	"nprt"
	"nprt/internal/imprecise"
	"nprt/internal/trace"
	"nprt/internal/workload"
)

func main() {
	// First, the kernel-level view: what does coefficient truncation do to
	// one 8×8 block?
	fmt.Println("truncated-IDCT characterization (per 8×8 block):")
	spec := imprecise.ImageSpec{Name: "qvga", Width: 320, Height: 240, Channels: 1}
	for _, keep := range []int{2, 4, 6, 8} {
		ch := imprecise.CharacterizeIDCT(spec, keep, 100, 1)
		fmt.Printf("  keep %d/8 rows: mean abs pixel error %.3f, cost %d%% of accurate\n",
			keep, ch.MeanError, 100*imprecise.IDCTOpCount(keep)/imprecise.IDCTOpCount(8))
	}

	// The paper's IDCT case: 5 frame streams, WCETs from transform op
	// counts, errors from measurement.
	c, err := workload.IDCTCase()
	if err != nil {
		log.Fatal(err)
	}
	set, err := c.Set()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nIDCT task set (Table I row):")
	fmt.Print(set.String())
	fmt.Printf("schedulable accurate:  %v\n", nprt.Schedulable(set, nprt.Accurate))
	fmt.Printf("schedulable imprecise: %v (condition-2 blocking at high truncation cost)\n",
		nprt.Schedulable(set, nprt.Imprecise))

	run := func(name string, p nprt.Policy) *nprt.SimResult {
		res, err := nprt.Simulate(set, p, nprt.SimConfig{
			Hyperperiods: 500,
			Sampler:      nprt.NewRandomSampler(set, 7),
			TraceLimit:   2 * set.JobsPerHyperperiod(),
		})
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("  %-14s misses=%-12s mean pixel error %.4f (accurate runs: %d%%)\n",
			name, res.Misses.String(), res.MeanError(),
			100*res.Accurate/(res.Accurate+res.Imprecise))
		return res
	}

	fmt.Println("\ndecoding 500 hyper-periods per method:")
	run("EDF-Imprecise", nprt.NewEDFImprecise())
	ilpPost, err := nprt.NewILPPostOABestEffort(set)
	if err != nil {
		log.Fatal(err)
	}
	best := run("ILP+Post+OA", ilpPost)

	fmt.Println("\nfirst two hyper-periods under ILP+Post+OA ('#' accurate, 'o' imprecise):")
	fmt.Print(trace.Gantt(best.Trace, set, set.Hyperperiod()/120, 0))
}
