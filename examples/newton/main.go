// Newton prototype: the reproduction of the paper's Linux 4.6 / ARM
// Cortex-A53 experiment (§VI-B). Three periodic tasks solve nonlinear
// equations with Newton–Raphson; accurate mode uses a tight convergence
// criterion, imprecise mode a loose one. Every job in this example runs the
// *real* solver — execution times are real iteration counts charged to a
// virtual clock, and errors are the real deviation of the loose root from
// the tight root of the same instance.
//
// The example prints the Table IV profile (including a wall-clock
// measurement on this host), then runs the four methods of Figure 5.
//
//	go run ./examples/newton
package main

import (
	"fmt"
	"log"

	"nprt"
	"nprt/internal/imprecise"
	"nprt/internal/rt"
	"nprt/internal/workload"
)

func main() {
	c, infos, err := workload.NewtonCase()
	if err != nil {
		log.Fatal(err)
	}
	set, err := c.Set()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Table IV profile (virtual µs, derived from real solver characterization):")
	fmt.Printf("%-18s %12s %12s %14s %14s %10s\n",
		"task", "w (acc)", "x (imp)", "ε̂_accurate", "ε̂_imprecise", "mean err")
	for _, in := range infos {
		fmt.Printf("%-18s %12d %12d %14.0e %14g %10.4g\n",
			in.Name, in.AccurateWCET, in.ImpreciseWCET, in.TolAccurate, in.TolImprecise, in.MeanError)
	}

	fmt.Println("\nwall-clock measurement of the same kernels on this host:")
	for i, eq := range imprecise.NewtonEquations() {
		tight := rt.MeasureWallClock(eq, workload.NRToleranceAccurate, 200, 1)
		loose := rt.MeasureWallClock(eq, workload.NRTolerancesImprecise[i], 200, 1)
		fmt.Printf("  %-16s accurate max %8d ns | imprecise max %8d ns (%.0f%% of accurate)\n",
			eq.Name, tight.MaxNanos, loose.MaxNanos,
			100*float64(loose.MaxNanos)/float64(tight.MaxNanos))
	}

	fmt.Println("\nscheduling the real solvers (20 hyper-periods, virtual clock):")
	methods := []struct {
		name  string
		build func() (nprt.Policy, error)
	}{
		{"EDF-Imprecise", func() (nprt.Policy, error) { return nprt.NewEDFImprecise(), nil }},
		{"EDF+ESR", func() (nprt.Policy, error) { return nprt.NewEDFESR(), nil }},
		{"Flipped EDF", func() (nprt.Policy, error) { return nprt.NewFlippedEDFBestEffort(set) }},
		{"ILP+Post+OA", func() (nprt.Policy, error) { return nprt.NewILPPostOABestEffort(set) }},
	}
	for _, m := range methods {
		p, err := m.build()
		if err != nil {
			log.Fatalf("%s: %v", m.name, err)
		}
		sampler := rt.NewNRSampler(infos, 5)
		res, err := nprt.Simulate(set, p, nprt.SimConfig{Hyperperiods: 20, Sampler: sampler})
		if err != nil {
			log.Fatalf("%s: %v", m.name, err)
		}
		fmt.Printf("  %-14s misses=%-10s mean error %.5f  (real solves: %d)\n",
			m.name, res.Misses.String(), res.MeanError(), sampler.Solves)
	}
	fmt.Println("\n(the collaborative methods cut the error by upgrading jobs to the tight")
	fmt.Println(" criterion whenever the online check t_cur + w ≤ f̂ shows enough slack)")
}
