// Target tracking: the paper's cumulative-error scenario (§II-C, §V). An
// estimation error made at time step j is inherited by step j+1 and only
// cleared by an accurate execution, so the number of consecutive imprecise
// jobs of each tracker must stay within its budget B_i.
//
// The example runs the online heuristic EDF+ESR(C) and the complete
// offline dynamic program DP(C) on a tight tracking workload and shows the
// paper's Table III effect: the heuristic is forced into budget violations
// that the DP avoids by planning ahead.
//
//	go run ./examples/tracking
package main

import (
	"fmt"
	"log"

	"nprt"
	"nprt/internal/task"
)

func main() {
	// Three trackers share one processor. Budgets B are deliberately tight:
	// the radar tracker must be refreshed accurately every other frame.
	set, err := nprt.NewTaskSet([]nprt.Task{
		{
			Name: "radar", Period: 10_000, WCETAccurate: 6_000, WCETImprecise: 2_000,
			ExecAccurate:            nprt.Dist{Mean: 2_700, Sigma: 550, Min: 600, Max: 6_000},
			ExecImprecise:           nprt.Dist{Mean: 900, Sigma: 180, Min: 200, Max: 2_000},
			Error:                   nprt.Dist{Mean: 1.0, Sigma: 0.3},
			MaxConsecutiveImprecise: 1,
		},
		{
			Name: "lidar", Period: 20_000, WCETAccurate: 9_000, WCETImprecise: 4_000,
			ExecAccurate:            nprt.Dist{Mean: 4_200, Sigma: 800, Min: 900, Max: 9_000},
			ExecImprecise:           nprt.Dist{Mean: 1_800, Sigma: 400, Min: 400, Max: 4_000},
			Error:                   nprt.Dist{Mean: 2.4, Sigma: 0.6},
			MaxConsecutiveImprecise: 2,
		},
		{
			Name: "camera", Period: 20_000, WCETAccurate: 8_000, WCETImprecise: 3_000,
			ExecAccurate:            nprt.Dist{Mean: 3_600, Sigma: 700, Min: 800, Max: 8_000},
			ExecImprecise:           nprt.Dist{Mean: 1_400, Sigma: 300, Min: 300, Max: 3_000},
			Error:                   nprt.Dist{Mean: 1.7, Sigma: 0.4},
			MaxConsecutiveImprecise: 2,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("tracking task set:")
	fmt.Print(set.String())
	fmt.Printf("schedulable accurate:  %v\n", nprt.Schedulable(set, nprt.Accurate))
	fmt.Printf("schedulable imprecise: %v\n", nprt.Schedulable(set, nprt.Imprecise))

	// Online heuristic: four-scenario mode selection with the error-slack /
	// latency-slack ratio test.
	esrc := nprt.NewCumulativeESR()
	res, err := nprt.Simulate(set, esrc, nprt.SimConfig{
		Hyperperiods: 2000,
		Sampler:      nprt.NewRandomSampler(set, 11),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nEDF+ESR(C): misses=%s budget violations=%.1f%% of %d jobs\n",
		res.Misses.String(), esrc.ViolationPercent(), esrc.Stats.Jobs)
	fmt.Printf("  dispatch scenarios 1..4: %v\n", esrc.Stats.Scenario)

	// Offline DP(C): a complete search over precision assignments in the
	// super period (here P·lcm(B_i+1)).
	plan, stats, err := nprt.SolveCumulativeDP(set, nprt.CumulativeDPOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if !stats.Feasible {
		fmt.Printf("\nDP(C): no feasible precision assignment (frontier peak %d)\n",
			maxOf(stats.LevelCounts))
		return
	}
	fmt.Printf("\nDP(C): feasible, super period=%d, %d jobs planned, frontier peak=%d\n",
		plan.SuperPeriod, len(plan.Jobs), maxOf(stats.LevelCounts))

	// Execute the plan and verify the budgets hold in execution.
	replay, err := nprt.Simulate(set, nprt.NewCumulativeReplay(plan), nprt.SimConfig{
		Hyperperiods: 2000,
		Sampler:      nprt.NewRandomSampler(set, 11),
		TraceLimit:   -1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DP(C) replay: misses=%s\n", replay.Misses.String())
	maxRuns := consecutiveImprecise(replay, set.Len())
	for i := 0; i < set.Len(); i++ {
		fmt.Printf("  %-8s max consecutive imprecise %d (budget %d)\n",
			set.Task(i).Name, maxRuns[i], set.Task(i).MaxConsecutiveImprecise)
	}
}

func consecutiveImprecise(res *nprt.SimResult, n int) []int {
	cur := make([]int, n)
	max := make([]int, n)
	for _, e := range res.Trace.Entries {
		if e.Mode == task.Imprecise {
			cur[e.Job.TaskID]++
			if cur[e.Job.TaskID] > max[e.Job.TaskID] {
				max[e.Job.TaskID] = cur[e.Job.TaskID]
			}
		} else {
			cur[e.Job.TaskID] = 0
		}
	}
	return max
}

func maxOf(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
