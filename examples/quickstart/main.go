// Quickstart: define a periodic task set with accurate and imprecise
// execution modes, check the non-preemptive schedulability conditions in
// both modes, and run the EDF+ESR online scheduler.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"nprt"
)

func main() {
	// Two sensor-fusion style tasks. Times are virtual microseconds.
	// Accurate mode cannot be scheduled (utilization 12/20 + 16/40 = 1.0,
	// but non-preemptive blocking violates condition 2); imprecise mode
	// passes with margin, which is the guarantee EDF+ESR builds on.
	set, err := nprt.NewTaskSet([]nprt.Task{
		{
			Name:          "fusion",
			Period:        20_000,
			WCETAccurate:  12_000,
			WCETImprecise: 4_000,
			ExecAccurate:  nprt.Dist{Mean: 5_000, Sigma: 1_500, Min: 1_200, Max: 12_000},
			ExecImprecise: nprt.Dist{Mean: 2_000, Sigma: 600, Min: 400, Max: 4_000},
			Error:         nprt.Dist{Mean: 3.2, Sigma: 0.9},
		},
		{
			Name:          "planner",
			Period:        40_000,
			WCETAccurate:  16_000,
			WCETImprecise: 5_000,
			ExecAccurate:  nprt.Dist{Mean: 7_000, Sigma: 2_000, Min: 1_600, Max: 16_000},
			ExecImprecise: nprt.Dist{Mean: 2_500, Sigma: 800, Min: 500, Max: 5_000},
			Error:         nprt.Dist{Mean: 7.5, Sigma: 2.1},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("task set:")
	fmt.Print(set.String())

	for _, mode := range []nprt.Mode{nprt.Accurate, nprt.Imprecise} {
		rep := nprt.CheckSchedulability(set, mode)
		fmt.Printf("\nTheorem 1, %s mode: schedulable=%v (U=%.3f, γ_min=%.3f)\n",
			mode, rep.Schedulable, rep.Utilization, rep.GammaMin)
		for _, v := range rep.Violations {
			fmt.Println("   ", v)
		}
	}

	// The imprecise-mode pass is the precondition for ESR's no-miss
	// guarantee: every job runs imprecise unless reclaimed slack covers the
	// accurate/imprecise WCET gap.
	fmt.Println("\nrunning EDF+ESR for 2000 hyper-periods...")
	res, err := nprt.Simulate(set, nprt.NewEDFESR(), nprt.SimConfig{
		Hyperperiods: 2000,
		Sampler:      nprt.NewRandomSampler(set, 42),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("jobs=%d misses=%s accurate=%d imprecise=%d\n",
		res.Jobs, res.Misses.String(), res.Accurate, res.Imprecise)
	fmt.Printf("mean error per job: %.3f (σ %.3f)\n", res.MeanError(), res.ErrorStdDev())

	// Compare against the always-imprecise baseline.
	base, err := nprt.Simulate(set, nprt.NewEDFImprecise(), nprt.SimConfig{
		Hyperperiods: 2000,
		Sampler:      nprt.NewRandomSampler(set, 42),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EDF-Imprecise baseline error: %.3f → ESR reclaims %.0f%% of it\n",
		base.MeanError(), 100*(1-res.MeanError()/base.MeanError()))
}
