// Adaptive pipeline: the two extensions the paper sketches, combined. A
// perception stack declares THREE accuracy levels per stage (§II-C's
// multi-level generalization: full / reduced / coarse processing) and its
// sensor triggers are sporadic — frames arrive with bounded jitter on top
// of the nominal frame period, so periods act as minimum inter-release
// separations (Jeffay's sporadic model).
//
// EDF+ESR picks the most accurate level the reclaimed slack affords at
// every dispatch and keeps the no-miss guarantee under jitter.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"nprt"
	"nprt/internal/task"
)

func main() {
	set, err := nprt.NewTaskSet([]nprt.Task{
		{
			Name: "detect", Period: 50_000,
			WCETAccurate: 40_000, WCETImprecise: 24_000,
			ExecAccurate:  nprt.Dist{Mean: 27_000, Sigma: 4_000, Min: 4_000, Max: 40_000},
			ExecImprecise: nprt.Dist{Mean: 16_000, Sigma: 2_500, Min: 2_400, Max: 24_000},
			Error:         nprt.Dist{Mean: 2.0, Sigma: 0.5},
			ExtraLevels: []nprt.Level{{
				WCET:  9_000, // coarse proposal-only pass
				Exec:  nprt.Dist{Mean: 6_000, Sigma: 1_000, Min: 900, Max: 9_000},
				Error: nprt.Dist{Mean: 6.5, Sigma: 1.5},
			}},
		},
		{
			Name: "track", Period: 100_000,
			WCETAccurate: 60_000, WCETImprecise: 34_000,
			ExecAccurate:  nprt.Dist{Mean: 40_000, Sigma: 6_000, Min: 6_000, Max: 60_000},
			ExecImprecise: nprt.Dist{Mean: 22_000, Sigma: 3_500, Min: 3_400, Max: 34_000},
			Error:         nprt.Dist{Mean: 3.2, Sigma: 0.8},
			ExtraLevels: []nprt.Level{{
				WCET:  13_000,
				Exec:  nprt.Dist{Mean: 8_500, Sigma: 1_500, Min: 1_300, Max: 13_000},
				Error: nprt.Dist{Mean: 9.8, Sigma: 2.2},
			}},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("adaptive perception stack (3 accuracy levels per task):")
	fmt.Print(set.String())
	fmt.Printf("Theorem 1, accurate WCETs:  %v (U=%.2f)\n",
		nprt.Schedulable(set, nprt.Accurate),
		nprt.CheckSchedulability(set, nprt.Accurate).Utilization)
	fmt.Printf("Theorem 1, deepest levels:  %v (U=%.2f)\n",
		nprt.Schedulable(set, nprt.Deepest),
		nprt.CheckSchedulability(set, nprt.Deepest).Utilization)

	// Sporadic frame arrival: up to 20% of a period of jitter per release.
	jitter := nprt.NewRandomJitter(set, []nprt.Dist{
		{Mean: 4_000, Sigma: 3_000, Min: 0, Max: 10_000},
		{Mean: 8_000, Sigma: 6_000, Min: 0, Max: 20_000},
	}, 17)

	res, err := nprt.Simulate(set, nprt.NewEDFESR(), nprt.SimConfig{
		Hyperperiods: 2_000,
		Sampler:      nprt.NewRandomSampler(set, 23),
		Jitter:       jitter,
		TraceLimit:   -1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nEDF+ESR over %d sporadic jobs: misses=%s mean error=%.3f\n",
		res.Jobs, res.Misses.String(), res.MeanError())

	// Which accuracy level did each dispatch land on?
	levels := map[nprt.Mode]int{}
	for _, e := range res.Trace.Entries {
		levels[e.Mode]++
	}
	fmt.Println("level usage:")
	for m := nprt.Accurate; int(m) < 3; m++ {
		name := m.String()
		if m == task.Mode(2) {
			name = "coarse"
		}
		fmt.Printf("  %-10s %6d jobs (%.1f%%)\n", name, levels[m],
			100*float64(levels[m])/float64(res.Jobs))
	}

	if vs := nprt.ValidateTrace(set, res.Trace, true); len(vs) != 0 {
		log.Fatalf("trace violation: %s", vs[0])
	}
	fmt.Println("\nevery job met its deadline; the slack check picked the deepest level")
	fmt.Println("only when jitter and queueing left no room for better accuracy")
}
