#!/usr/bin/env bash
# Run the cluster chaos soak and write the JSON/CSV artifact. The soak
# plays a deterministic churn tape across sharded clusters while a seeded
# torment plan injects storage faults on every shard WAL (failed fsyncs,
# torn writes, disk-full, stalls), crash-restarts shards, and wedge-
# evacuates them through the checkpoint-handoff migration path. Each
# width drives the tape three times (serial, serial again, concurrent)
# and the run fails if any task is silently lost, any clean-window
# deadline is missed, or any drive's digests/owner map diverge.
#
# With replicas > 0 every shard carries that many synchronous followers
# and the expect-model tightens to zero shed: wedges land on primary and
# follower drives, failover must absorb every one (promotions instead of
# evacuations), and the run fails on any shed, lost, orphaned or
# clean-missed task.
#
# usage: scripts/chaos_soak.sh [outdir] [events] [replicas]
#
#   outdir    artifact directory        (default: chaossoak)
#   events    churn events per tape     (default: 1200 — the CI soak;
#             raise for a denser torment schedule)
#   replicas  synchronous followers per shard (default: 0 — unreplicated)
set -euo pipefail
cd "$(dirname "$0")/.."

outdir="${1:-chaossoak}"
events="${2:-1200}"
replicas="${3:-0}"

# Stage into a temp dir so a failed run never leaves a partial artifact
# where CI (or a human) might mistake it for a finished one.
staging="$(mktemp -d "${TMPDIR:-/tmp}/chaos_soak.XXXXXX")"
trap 'rm -rf "$staging"' EXIT INT TERM

go run ./cmd/paperbench chaos -events "$events" -replicas "$replicas" -csv "$staging"

mkdir -p "$outdir"
mv "$staging"/chaos.json "$staging"/chaos.csv "$outdir"/
echo "chaos soak artifact: $outdir/chaos.json"
