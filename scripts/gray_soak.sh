#!/usr/bin/env bash
# Run the cluster gray-failure soak and write the JSON/CSV artifact. The
# soak plays a deterministic churn tape across sharded clusters while a
# seeded brownout plan makes one primary drive at a time SLOW — every op
# still succeeds, just far over the latency SLO, the failure mode
# fail-stop health checks cannot see. Each width drives the tape four
# times: signal-armed serial twice and concurrent once (all three must
# agree exactly — digests, owners, promotion/shed/miss counts), plus one
# blind control drive with the latency signal off. The run fails if any
# task is silently lost, any clean-window deadline is missed, any drive
# diverges, a brownout is absorbed without promotion (replicas > 0), or
# the armed drive misses more deadlines than the blind one.
#
# usage: scripts/gray_soak.sh [outdir] [events] [replicas]
#
#   outdir    artifact directory        (default: graysoak)
#   events    churn events per tape     (default: 1200 — the CI soak;
#             raise for a denser brownout schedule)
#   replicas  synchronous followers per shard (default: 1 — promotion is
#             the headline containment path; 0 exercises fencing only)
set -euo pipefail
cd "$(dirname "$0")/.."

outdir="${1:-graysoak}"
events="${2:-1200}"
replicas="${3:-1}"

# Stage into a temp dir so a failed run never leaves a partial artifact
# where CI (or a human) might mistake it for a finished one.
staging="$(mktemp -d "${TMPDIR:-/tmp}/gray_soak.XXXXXX")"
trap 'rm -rf "$staging"' EXIT INT TERM

go run ./cmd/paperbench gray -events "$events" -replicas "$replicas" -csv "$staging"

mkdir -p "$outdir"
mv "$staging"/gray.json "$staging"/gray.csv "$outdir"/
echo "gray soak artifact: $outdir/gray.json"
