#!/bin/sh
# Run the solver-stack benchmarks (offline ILP branch-and-bound, DP(C)
# state hashing, dispatch engine) and emit a JSON report via cmd/benchjson.
#
# usage: scripts/bench_ilp.sh [out.json] [benchtime]
#
#   out.json   output path                 (default: BENCH_ILP.json)
#   benchtime  go test -benchtime value    (default: 1x — a smoke run;
#              use e.g. 3x or 2s for a stable baseline)
#
# The node-budgeted ILP benchmarks explore an identical search tree in
# every configuration, so ns/op ratios are meaningful even at -benchtime 1x.
set -eu
cd "$(dirname "$0")/.."

out="${1:-BENCH_ILP.json}"
benchtime="${2:-1x}"

go test -run xxx \
  -bench 'BenchmarkILPOffline|BenchmarkCumulativeDP|BenchmarkEngineDispatch|BenchmarkOptimizeModes' \
  -benchmem -benchtime "$benchtime" . ./internal/cumulative/ \
  | go run ./cmd/benchjson -out "$out"

echo "wrote $out" >&2
