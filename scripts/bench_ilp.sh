#!/usr/bin/env bash
# Run the solver-stack benchmarks (offline ILP branch-and-bound, DP(C)
# state hashing, dispatch engine) and emit a JSON report via cmd/benchjson.
#
# usage: scripts/bench_ilp.sh [out.json] [benchtime]
#
#   out.json   output path                 (default: BENCH_ILP.json)
#   benchtime  go test -benchtime value    (default: 1x — a smoke run;
#              use e.g. 3x or 2s for a stable baseline)
#
# The node-budgeted ILP benchmarks explore an identical search tree in
# every configuration, so ns/op ratios are meaningful even at -benchtime 1x.
#
# pipefail matters here: without it, a `go test` failure upstream of the
# pipe would vanish behind benchjson's exit status and CI would upload an
# empty report as if the bench had run.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_ILP.json}"
benchtime="${2:-1x}"

# Stage the report so a mid-pipe failure cannot truncate an existing one.
staging="$(mktemp "${TMPDIR:-/tmp}/bench_ilp.XXXXXX.json")"
trap 'rm -f "$staging"' EXIT INT TERM

go test -run xxx \
  -bench 'BenchmarkILPOffline|BenchmarkCumulativeDP|BenchmarkEngineDispatch|BenchmarkOptimizeModes' \
  -benchmem -benchtime "$benchtime" . ./internal/cumulative/ \
  | go run ./cmd/benchjson -out "$staging"

mv "$staging" "$out"
trap - EXIT INT TERM
echo "wrote $out" >&2
