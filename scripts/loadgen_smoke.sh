#!/usr/bin/env bash
# Smoke the live ingest path: boot impserve, run a short low-rate loadgen
# pass (single admits, then batches), and assert zero errors and a sane
# p99. Writes the loadgen reports into a directory for CI to upload.
#
# usage: scripts/loadgen_smoke.sh [outdir]
#
#   outdir   report directory (default: loadsmoke)
#
# The rate is deliberately far below capacity (the group-commit bench
# sustains tens of thousands of admits/s; this asks for hundreds), so any
# error or a p99 above the generous bound means the ingest path broke, not
# that the machine was slow.
set -euo pipefail
cd "$(dirname "$0")/.."

outdir="${1:-loadsmoke}"
mkdir -p "$outdir"

bin="$(mktemp -d "${TMPDIR:-/tmp}/loadgen_smoke.XXXXXX")"
addr="127.0.0.1:18097"
pid=""
cleanup() {
  if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
    kill -TERM "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
  fi
  rm -rf "$bin"
}
trap cleanup EXIT INT TERM

go build -o "$bin/impserve" ./cmd/impserve
go build -o "$bin/loadgen" ./cmd/loadgen

"$bin/impserve" -dir "$bin/state" -listen "$addr" -quiet &
pid=$!

# Wait for readiness (the listener binds before the store attaches).
for _ in $(seq 1 100); do
  if curl -fsS "http://$addr/readyz" >/dev/null 2>&1; then break; fi
  sleep 0.1
done

"$bin/loadgen" -url "http://$addr" -mode open -rate 300 -conns 8 \
  -duration 3s -warmup 500ms -p99-max 250ms -fail-on-error \
  -out "$outdir/loadgen_single.json"

"$bin/loadgen" -url "http://$addr" -mode open -rate 50 -conns 4 -batch 16 \
  -duration 3s -warmup 500ms -p99-max 250ms -fail-on-error \
  -out "$outdir/loadgen_batch.json"

kill -TERM "$pid"
wait "$pid"
pid=""

# Same pass at cluster width: a 4-shard server behind the same surface,
# addressed through two -target flags so the client's round-robin spread
# and per-target stats run against live shard engines.
"$bin/impserve" -dir "$bin/state-cluster" -listen "$addr" -quiet \
  -shards 4 -placement round-robin &
pid=$!
for _ in $(seq 1 100); do
  if curl -fsS "http://$addr/readyz" >/dev/null 2>&1; then break; fi
  sleep 0.1
done

"$bin/loadgen" -target "http://$addr" -target "http://$addr" \
  -mode open -rate 100 -conns 4 -batch 16 -names 64 \
  -duration 3s -warmup 500ms -p99-max 250ms -fail-on-error \
  -out "$outdir/loadgen_cluster.json"

python3 - "$outdir/loadgen_cluster.json" <<'PY'
import json, sys
rep = json.load(open(sys.argv[1]))
state = json.loads(json.dumps(rep["server_state"][0]))
assert state["shards"] == 4, state["shards"]
assert rep["admits"] > 0, "cluster smoke admitted nothing"
assert len(rep["targets"]) == 2 and all(t["requests"] > 0 for t in rep["targets"]), rep.get("targets")
print(f"cluster smoke: {rep['admits']} admits across {state['shards']} shards", file=sys.stderr)
PY

kill -TERM "$pid"
wait "$pid"
pid=""
echo "wrote $outdir/loadgen_single.json $outdir/loadgen_batch.json $outdir/loadgen_cluster.json" >&2
