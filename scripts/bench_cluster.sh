#!/usr/bin/env bash
# Cluster-scaling benchmark: the same closed-loop loadgen workload against
# impserve at 1 shard and at N shards, equal client concurrency, and the
# headline ratio is ADMITTED adds per second — admission capacity, not raw
# request throughput.
#
# usage: scripts/bench_cluster.sh [out.json] [duration] [shards] [min_ratio]
#
#   out.json   output path          (default: BENCH_CLUSTER.json)
#   duration   per-run measure time (default: 5s; use 10s+ for baselines)
#   shards     wide configuration   (default: 8)
#   min_ratio  fail below this admits/s scaling ratio (default: 4; 0 skips)
#
# Why admitted adds: one scheduler saturates at Theorem-1 utilization 1.0 —
# past that point every add is feasibility-rejected, and HTTP 200s keep
# flowing while admission capacity is flat. The workload (-names well past
# one shard's capacity) holds the single shard at its ceiling; N shards
# hold N ceilings, so admitted adds/s is where partitioning shows up.
# Requests/s and events/s are reported too, transparently: on one spindle
# the raw ingest path scales far less than admission capacity does.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_CLUSTER.json}"
duration="${2:-5s}"
shards="${3:-8}"
min_ratio="${4:-4}"

conns="${BENCH_CONNS:-16}"
batch="${BENCH_BATCH:-64}"
placement="${BENCH_PLACEMENT:-round-robin}"
# The name pool is sized so one shard is deeply name-scarce (it caps out
# near 22 resident tasks) while 8 shards' aggregate capacity still exceeds
# the ~names/2 churn equilibrium — admission capacity, not the name pool,
# is what separates the two configurations.
names="${BENCH_NAMES:-320}"
addr="127.0.0.1:18096"

bin="$(mktemp -d "${TMPDIR:-/tmp}/bench_cluster.XXXXXX")"
pid=""
cleanup() {
  if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
    kill -TERM "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
  fi
  rm -rf "$bin"
}
trap cleanup EXIT INT TERM

go build -o "$bin/impserve" ./cmd/impserve
go build -o "$bin/loadgen" ./cmd/loadgen

run_width() {
  local width="$1" report="$2"
  "$bin/impserve" -dir "$bin/state-$width" -listen "$addr" -quiet \
    -shards "$width" -placement "$placement" -queue 256 &
  pid=$!
  for _ in $(seq 1 100); do
    if curl -fsS "http://$addr/readyz" >/dev/null 2>&1; then break; fi
    sleep 0.1
  done
  "$bin/loadgen" -url "http://$addr" -mode closed -conns "$conns" \
    -batch "$batch" -names "$names" -duration "$duration" -warmup 500ms \
    -out "$report"
  kill -TERM "$pid"
  wait "$pid" || true
  pid=""
}

run_width 1 "$bin/one.json"
run_width "$shards" "$bin/wide.json"

staging="$(mktemp "${TMPDIR:-/tmp}/bench_cluster.XXXXXX.json")"
ONE="$bin/one.json" WIDE="$bin/wide.json" OUT="$staging" \
SHARDS="$shards" CONNS="$conns" BATCH="$batch" NAMES="$names" MIN_RATIO="$min_ratio" PLACEMENT="$placement" \
python3 - <<'PY'
import json, os, sys

one = json.load(open(os.environ["ONE"]))
wide = json.load(open(os.environ["WIDE"]))
min_ratio = float(os.environ["MIN_RATIO"])

def row(rep):
    return {
        "admits_per_sec": rep["admits_per_sec"],
        "admits": rep["admits"],
        "add_rejects": rep["add_rejects"],
        "requests_per_sec": rep["requests_per_sec"],
        "events_per_sec": rep["events_per_sec"],
        "errors": rep["errors"],
        "p99_us": rep["latency"]["p99_us"],
        "resident_tasks": (rep.get("server_state") or [{}])[0].get("tasks"),
    }

ratio = wide["admits_per_sec"] / max(one["admits_per_sec"], 1e-9)
report = {
    "benchmark": "cluster-scaling",
    "workload": {
        "mode": "closed", "conns": int(os.environ["CONNS"]),
        "batch": int(os.environ["BATCH"]), "names": int(os.environ["NAMES"]),
        "duration_s": one["duration_s"], "placement": os.environ["PLACEMENT"],
    },
    "one_shard": row(one),
    "wide": dict(row(wide), shards=int(os.environ["SHARDS"])),
    "admits_per_sec_ratio": round(ratio, 2),
    "min_ratio": min_ratio,
    "pass": min_ratio == 0 or ratio >= min_ratio,
    "raw": {"one_shard": one, "wide": wide},
}
json.dump(report, open(os.environ["OUT"], "w"), indent=2)
print(f"admits/s: 1 shard {one['admits_per_sec']:.0f}, "
      f"{os.environ['SHARDS']} shards {wide['admits_per_sec']:.0f} "
      f"-> {ratio:.2f}x (events/s {one['events_per_sec']:.0f} -> {wide['events_per_sec']:.0f})",
      file=sys.stderr)
if not report["pass"]:
    print(f"FAIL: admits/s ratio {ratio:.2f} below bound {min_ratio}", file=sys.stderr)
    sys.exit(3)
PY

mv "$staging" "$out"
echo "wrote $out" >&2
