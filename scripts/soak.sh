#!/usr/bin/env bash
# Run the churn soak against the long-running scheduler runtime and write
# the JSON/CSV artifact. The soak replays deterministic admission-control
# event tapes (adds, removes, overload windows) on both dispatch engines
# and fails if an admitted set misses a deadline outside a declared
# degraded window, or if the engines' digests diverge.
#
# usage: scripts/soak.sh [outdir] [events]
#
#   outdir  artifact directory          (default: churnsoak)
#   events  admission events per tape   (default: 1500 — the CI short
#           soak; use 10000 for the full endurance run, or more)
set -euo pipefail
cd "$(dirname "$0")/.."

outdir="${1:-churnsoak}"
events="${2:-1500}"

# Stage into a temp dir so a failed run never leaves a partial artifact
# where CI (or a human) might mistake it for a finished one.
staging="$(mktemp -d "${TMPDIR:-/tmp}/soak.XXXXXX")"
trap 'rm -rf "$staging"' EXIT INT TERM

go run ./cmd/paperbench churn -events "$events" -csv "$staging"

mkdir -p "$outdir"
mv "$staging"/churn.json "$staging"/churn.csv "$outdir"/
echo "soak artifact: $outdir/churn.json"
