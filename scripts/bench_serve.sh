#!/usr/bin/env bash
# Run the ingest-path benchmarks (group-commit WAL, batched admission
# engine, zero-alloc event decode) and emit a JSON report via cmd/benchjson.
#
# usage: scripts/bench_serve.sh [out.json] [benchtime]
#
#   out.json   output path                 (default: BENCH_SERVE.json)
#   benchtime  go test -benchtime value    (default: 1x — a smoke run;
#              use e.g. 2s for a stable baseline)
#
# BenchmarkAdmitSerial vs BenchmarkAdmitGroupCommit carry the acceptance
# numbers as custom metrics: at conc ≥ 8 the group-commit path must show
# fsyncs/admit < 0.25 and ≥ 3x the serial admits/s. These run real fsyncs,
# so use a benchtime of at least 2s (and a quiet disk) for baselines.
#
# pipefail matters here: without it, a `go test` failure upstream of the
# pipe would vanish behind benchjson's exit status and CI would upload an
# empty report as if the bench had run.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_SERVE.json}"
benchtime="${2:-1x}"

# Stage the report so a mid-pipe failure cannot truncate an existing one.
staging="$(mktemp "${TMPDIR:-/tmp}/bench_serve.XXXXXX.json")"
trap 'rm -f "$staging"' EXIT INT TERM

go test -run xxx \
  -bench 'BenchmarkAdmitSerial|BenchmarkAdmitGroupCommit|BenchmarkGroupCommit|BenchmarkDecodeEvent' \
  -benchmem -benchtime "$benchtime" \
  ./internal/runtime/ ./internal/journal/ ./internal/serve/ \
  | go run ./cmd/benchjson -out "$staging"

mv "$staging" "$out"
trap - EXIT INT TERM
echo "wrote $out" >&2
