#!/usr/bin/env bash
# Run the crash-point sweep: build impserve, then re-execute it with a
# kill at every fsync boundary of a seeded churn-tape run and verify each
# recovery reaches the uncrashed digest, on both dispatch engines. This is
# the mechanical proof behind the crash-only durable store (see
# docs/ALGORITHMS.md §10); a nonzero exit means some kill point did NOT
# recover bit-identically.
#
# usage: scripts/crash_sweep.sh [out.json] [events] [seed]
#
#   out.json  sweep artifact path        (default: crash_sweep.json)
#   events    churn-tape admission events (default: 12; more events mean
#             more fsync boundaries, i.e. a denser sweep)
#   seed      tape + runtime seed         (default: 1)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-crash_sweep.json}"
events="${2:-12}"
seed="${3:-1}"

workdir="$(mktemp -d "${TMPDIR:-/tmp}/crash_sweep.XXXXXX")"
trap 'rm -rf "$workdir"' EXIT INT TERM

go build -o "$workdir/impserve" ./cmd/impserve

"$workdir/impserve" -sweep -gen "$events" -seed "$seed" \
  -dir "$workdir/sweep" -sweep-out "$workdir/sweep.json"

mv "$workdir/sweep.json" "$out"
echo "crash sweep artifact: $out"
