// Command taskgen emits synthetic task sets as JSON, in the style of the
// paper's random testcases: pick a task count, a jobs-per-hyper-period
// target and an accurate-mode utilization, and get a deterministic set that
// fails Theorem 1 accurately but (optionally) passes it imprecisely —
// ready for impsched -file or schedcheck -file.
//
// Usage:
//
//	taskgen -tasks 6 -jobs 30 -util 2.0 -seed 7 > tasks.json
//	taskgen -case Rnd7 > rnd7.json           # dump a built-in case
package main

import (
	"flag"
	"fmt"
	"os"

	"nprt/internal/cli"
	"nprt/internal/task"
	"nprt/internal/workload"
)

func main() {
	tasks := flag.Int("tasks", 5, "number of tasks")
	jobs := flag.Int("jobs", 20, "jobs per hyper-period (periods divide 2520)")
	util := flag.Float64("util", 1.5, "accurate-mode utilization target")
	impOK := flag.Bool("imprecise-feasible", true, "require Theorem 1 to pass with imprecise WCETs")
	seed := flag.Uint64("seed", 1, "construction seed")
	name := flag.String("name", "gen", "task name prefix")
	caseName := flag.String("case", "", "dump a built-in testcase instead of generating")
	flag.Parse()

	set, err := buildSet(*caseName, workload.RandomSpec{
		Name: *name, Tasks: *tasks, JobsPerHyperperiod: *jobs,
		UtilizationAccurate: *util, ImpreciseFeasible: *impOK, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "taskgen:", err)
		os.Exit(1)
	}
	if err := set.EncodeJSON(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "taskgen:", err)
		os.Exit(1)
	}
}

func buildSet(caseName string, spec workload.RandomSpec) (*task.Set, error) {
	if caseName != "" {
		return cli.LoadSet(caseName, "")
	}
	return workload.Generate(spec)
}
