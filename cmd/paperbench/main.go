// Command paperbench regenerates the tables and figures of the paper's
// evaluation section.
//
// Usage:
//
//	paperbench table1
//	paperbench table2 -hp 10000          # the paper's 10K hyper-periods
//	paperbench fig3
//	paperbench table3
//	paperbench fig4
//	paperbench table4
//	paperbench fig5
//	paperbench all -hp 1000
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"nprt/internal/cli"
	"nprt/internal/experiments"
)

func main() {
	// Exit via a helper so the profile-flushing defers run before the
	// process terminates.
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("paperbench", flag.ExitOnError)
	hp := fs.Int("hp", 300, "hyper-periods per simulation (paper: 10000)")
	seed := fs.Uint64("seed", 1, "root random seed")
	csvDir := fs.String("csv", "", "also write machine-readable CSV files into this directory")
	par := fs.Bool("parallel", runtime.NumCPU() > 1,
		"run per-case simulations concurrently (default: on whenever >1 CPU; results are identical to serial)")
	ilpWorkers := fs.Int("ilpworkers", runtime.NumCPU(),
		"LP-relaxation workers inside each offline ILP branch-and-bound (results are bit-identical at any setting)")
	events := fs.Int("events", 10000, "churn artifact: admission events per soak tape")
	replicas := fs.Int("replicas", 0, "chaos artifact: synchronous followers per shard (0 = unreplicated)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write an allocation profile to this file on exit")
	fs.Usage = usage

	if len(os.Args) < 2 {
		usage()
		return 2
	}
	what := os.Args[1]
	if err := fs.Parse(os.Args[2:]); err != nil {
		return 2
	}
	cfg := experiments.Config{Hyperperiods: *hp, Seed: *seed, Parallel: *par, ILPWorkers: *ilpWorkers}
	churnEvents = *events
	chaosReplicas = *replicas

	// First SIGINT/SIGTERM: finish the artifact in flight (its CSV is
	// already flushed per artifact), skip the rest, exit 4. Second: abort.
	interrupted := cli.Interrupted()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "paperbench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush accurate allocation stats before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "paperbench:", err)
			}
		}()
	}

	artifacts := []string{what}
	if what == "all" {
		artifacts = []string{"table1", "table2", "fig3", "table3", "fig4", "table4", "fig5", "overhead", "energy"}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			return 1
		}
	}
	for i, a := range artifacts {
		if interrupted() {
			fmt.Fprintf(os.Stderr, "paperbench: interrupted; skipping %v\n", artifacts[i:])
			return cli.ExitInterrupted
		}
		if i > 0 {
			fmt.Println()
		}
		if err := emit(a, cfg, *csvDir); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench %s: %v\n", a, err)
			return 1
		}
	}
	if interrupted() {
		// The signal arrived inside the last artifact: its output is
		// complete, but the exit code still reports the cut.
		return cli.ExitInterrupted
	}
	return 0
}

// churnEvents is the -events flag, plumbed to the churn artifact.
var churnEvents int

// chaosReplicas is the -replicas flag, plumbed to the chaos artifact.
var chaosReplicas int

// writeCSV writes one artifact's CSV file when a directory was requested.
func writeCSV(dir, name string, write func(f *os.File) error) error {
	if dir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return write(f)
}

func emit(what string, cfg experiments.Config, csvDir string) error {
	switch what {
	case "table1":
		rows, err := experiments.Table1()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTable1(rows))
		return writeCSV(csvDir, "table1.csv", func(f *os.File) error {
			return experiments.WriteTable1CSV(f, rows)
		})
	case "table2":
		res, err := experiments.Table2(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTable2(res))
		return writeCSV(csvDir, "table2.csv", func(f *os.File) error {
			return experiments.WriteTable2CSV(f, res)
		})
	case "fig3":
		res, err := experiments.Fig3(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFig("FIGURE 3. MEAN ERROR VERSUS UTILIZATION", res))
		return writeCSV(csvDir, "fig3.csv", func(f *os.File) error {
			return experiments.WriteFigCSV(f, res)
		})
	case "table3":
		rows, err := experiments.Table3(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTable3(rows))
		return writeCSV(csvDir, "table3.csv", func(f *os.File) error {
			return experiments.WriteTable3CSV(f, rows)
		})
	case "fig4":
		res, err := experiments.Fig4(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFig4(res))
		return writeCSV(csvDir, "fig4.csv", func(f *os.File) error {
			return experiments.WriteFig4CSV(f, res)
		})
	case "table4":
		infos, err := experiments.Table4()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTable4(infos))
		return writeCSV(csvDir, "table4.json", func(f *os.File) error {
			return experiments.WriteJSON(f, infos)
		})
	case "fig5":
		res, err := experiments.Fig5(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFig("FIGURE 5. PROTOTYPE MEAN ERROR VERSUS UTILIZATION", res))
		return writeCSV(csvDir, "fig5.csv", func(f *os.File) error {
			return experiments.WriteFigCSV(f, res)
		})
	case "overhead":
		rows, err := experiments.Overhead("Rnd9", cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatOverhead("Rnd9", rows))
		return writeCSV(csvDir, "overhead.json", func(f *os.File) error {
			return experiments.WriteJSON(f, rows)
		})
	case "robustness":
		r, err := experiments.Robustness(cfg, []uint64{1, 2, 3, 4, 5})
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatRobustness(r))
		return writeCSV(csvDir, "robustness.json", func(f *os.File) error {
			return experiments.WriteJSON(f, r)
		})
	case "ilp":
		rows, err := experiments.ILPBench(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatILPBench(rows))
		return writeCSV(csvDir, "ilp.json", func(f *os.File) error {
			return experiments.WriteJSON(f, rows)
		})
	case "faults":
		r, err := experiments.FaultSweep(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFaults(r))
		if err := writeCSV(csvDir, "faults.json", func(f *os.File) error {
			return experiments.WriteJSON(f, r)
		}); err != nil {
			return err
		}
		return writeCSV(csvDir, "faults.csv", func(f *os.File) error {
			return experiments.WriteFaultsCSV(f, r)
		})
	case "churn":
		r, err := experiments.ChurnSoak(cfg, churnEvents, 2)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatChurn(r))
		if err := writeCSV(csvDir, "churn.json", func(f *os.File) error {
			return experiments.WriteJSON(f, r)
		}); err != nil {
			return err
		}
		return writeCSV(csvDir, "churn.csv", func(f *os.File) error {
			return experiments.WriteChurnCSV(f, r)
		})
	case "chaos":
		dir, err := os.MkdirTemp("", "paperbench-chaos-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		r, err := experiments.ChaosSoak(cfg, dir, churnEvents, nil, "", chaosReplicas)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatChaosSoak(r))
		if err := writeCSV(csvDir, "chaos.json", func(f *os.File) error {
			return experiments.WriteJSON(f, r)
		}); err != nil {
			return err
		}
		return writeCSV(csvDir, "chaos.csv", func(f *os.File) error {
			return experiments.WriteChaosSoakCSV(f, r)
		})
	case "gray":
		dir, err := os.MkdirTemp("", "paperbench-gray-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		r, err := experiments.GraySoak(cfg, dir, churnEvents, nil, "", chaosReplicas)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatGraySoak(r))
		if err := writeCSV(csvDir, "gray.json", func(f *os.File) error {
			return experiments.WriteJSON(f, r)
		}); err != nil {
			return err
		}
		return writeCSV(csvDir, "gray.csv", func(f *os.File) error {
			return experiments.WriteGraySoakCSV(f, r)
		})
	case "energy":
		rows, err := experiments.Energy("Rnd8", cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatEnergy("Rnd8", rows))
		return writeCSV(csvDir, "energy.json", func(f *os.File) error {
			return experiments.WriteJSON(f, rows)
		})
	default:
		return fmt.Errorf("unknown artifact %q", what)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `paperbench regenerates the paper's evaluation artifacts.

usage: paperbench <artifact> [-hp N] [-seed S] [-parallel=bool] [-csv DIR]
                  [-ilpworkers N] [-cpuprofile FILE] [-memprofile FILE]

artifacts:
  table1   testcase characteristics and schedulability
  table2   independent-error simulation results
  fig3     mean error versus utilization
  table3   cumulative-error stress tests
  fig4     DP(C) pruning effectiveness
  table4   Newton-Raphson task profiles
  fig5     prototype mean error versus utilization
  overhead measured scheduling overhead (the paper's runtime remarks)
  energy   busy-time (energy) versus error tradeoff per method
  robustness  Table II normalized ordering across seeds
  ilp      offline mode-ILP solver bench (fixed node budget, per-case timing)
  faults   overrun-containment fault sweep (miss rate and error vs. overrun
           probability/magnitude per containment policy)
  churn    long-running runtime churn soak (-events admission events per
           tape, both engines, zero-clean-miss and digest checks)
  chaos    cluster chaos soak (-events churn events under seeded shard
           kills, wedge-evacuations and storage faults; zero-lost-task,
           zero-clean-miss and digest-reproducibility checks)
  gray     cluster gray-failure soak (-events churn events under seeded
           drive brownouts; latency-SLO detection, deadline sheds and
           proactive promotion versus a blind control drive, with
           zero-lost-task and digest-reproducibility checks)
  all      everything above (except ilp, faults, churn, chaos and gray)

SIGINT/SIGTERM finishes the artifact in flight, keeps the CSVs already
written, and exits with code 4; a second signal aborts immediately.

-parallel fans independent per-case simulations over all CPUs (the default
on multi-core machines); outputs are bit-identical to a serial run.
-ilpworkers parallelizes LP relaxation solves inside each offline ILP
branch-and-bound (default: all CPUs); solver output is bit-identical at any
worker count.

profiling a run:
  paperbench table2 -hp 10000 -cpuprofile cpu.out -memprofile mem.out
  go tool pprof -top cpu.out      # where the time goes
  go tool pprof -top mem.out      # what allocates
`)
}
