// Command impsched runs one scheduling method on one task set in the
// virtual-time simulator and reports the Table II statistics (deadline
// violations, mean error, σ, mode counts), optionally with an ASCII Gantt
// chart of the first hyper-periods.
//
// Usage:
//
//	impsched -case Rnd7 -method "EDF+ESR" -hp 1000
//	impsched -case IDCT -method "ILP+Post+OA" -gantt
//	impsched -file tasks.json -method "EDF-Imprecise"
//	impsched -methods            # list methods
//
// SIGINT/SIGTERM finishes the stage in flight (plan construction or the
// simulation), flushes whatever was produced (saved plan, trace CSV) and
// exits with code 4; a second signal aborts immediately.
package main

import (
	"flag"
	"fmt"
	"os"

	"nprt/internal/cli"
	"nprt/internal/offline"
	"nprt/internal/sim"
	"nprt/internal/trace"
)

func main() {
	caseName := flag.String("case", "", "built-in testcase (Rnd1..Rnd13, IDCT, Newton)")
	file := flag.String("file", "", "JSON task-set file")
	method := flag.String("method", "EDF+ESR", "scheduling method")
	hp := flag.Int("hp", 1000, "hyper-periods to simulate")
	seed := flag.Uint64("seed", 1, "random seed for execution times and errors")
	gantt := flag.Bool("gantt", false, "print an ASCII Gantt chart of the first entries")
	traceCSV := flag.String("tracecsv", "", "write the executed trace as CSV to this file")
	savePlan := flag.String("saveplan", "", "write the offline plan (ILP/Post/Flipped methods) as JSON")
	loadPlan := flag.String("loadplan", "", "load a previously saved offline plan and run it with online adjustment")
	droplate := flag.Bool("droplate", false, "discard jobs already past their deadline (overload shedding)")
	listMethods := flag.Bool("methods", false, "list methods and exit")
	flag.Parse()

	// First SIGINT/SIGTERM: finish the current stage, flush whatever has
	// been produced (saved plan, trace CSV), exit 4. Second: abort.
	interrupted := cli.Interrupted()

	if *listMethods {
		for _, m := range cli.Methods() {
			fmt.Println(m)
		}
		return
	}

	s, err := cli.LoadSet(*caseName, *file)
	if err != nil {
		fail(err)
	}
	var p sim.Policy
	if *loadPlan != "" {
		f, err := os.Open(*loadPlan)
		if err != nil {
			fail(err)
		}
		sc, err := offline.DecodeSchedule(f, s)
		f.Close()
		if err != nil {
			fail(err)
		}
		p = offline.NewOA("loaded-plan+OA", sc)
	} else {
		p, err = cli.BuildPolicy(*method, s)
		if err != nil {
			fail(err)
		}
	}
	if *savePlan != "" {
		oa, ok := p.(*offline.OAPolicy)
		if !ok {
			fail(fmt.Errorf("-saveplan requires an offline method (ILP+OA, ILP+Post+OA, Flipped EDF)"))
		}
		f, err := os.Create(*savePlan)
		if err != nil {
			fail(err)
		}
		if err := oa.Sched.EncodeJSON(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("plan written:       %s (%d jobs)\n", *savePlan, len(oa.Sched.Jobs))
	}

	if interrupted() {
		// The policy (and a requested plan file) exists; the simulation has
		// not started. The plan on disk is the partial result.
		os.Exit(cli.ExitInterrupted)
	}
	traceLimit := 0
	if *gantt {
		traceLimit = 4 * s.JobsPerHyperperiod()
	}
	if *traceCSV != "" {
		traceLimit = -1
	}
	res, err := sim.Run(s, p, sim.Config{
		Hyperperiods: *hp,
		Sampler:      sim.NewRandomSampler(s, *seed),
		TraceLimit:   traceLimit,
		DropLate:     *droplate,
	})
	if err != nil {
		fail(err)
	}

	fmt.Printf("method:             %s\n", res.Policy)
	fmt.Printf("jobs executed:      %d over %d hyper-periods\n", res.Jobs, *hp)
	fmt.Printf("deadline misses:    %s\n", res.Misses.String())
	fmt.Printf("mean error:         %.4g (σ %.4g)\n", res.MeanError(), res.ErrorStdDev())
	fmt.Printf("mode counts:        accurate=%d imprecise=%d\n", res.Accurate, res.Imprecise)
	fmt.Printf("busy/horizon:       %d/%d (%.1f%%)\n",
		res.Busy, res.Horizon, 100*float64(res.Busy)/float64(res.Horizon))
	for i := 0; i < s.Len(); i++ {
		fmt.Printf("  %-16s mean err %.4g  mean response %.4g\n",
			s.Task(i).Name, res.PerTaskError[i].Mean(), res.PerTaskResponse[i].Mean())
	}
	if *traceCSV != "" && res.Trace != nil {
		f, err := os.Create(*traceCSV)
		if err != nil {
			fail(err)
		}
		if err := res.Trace.WriteCSV(f, s); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("trace written:      %s (%d rows)\n", *traceCSV, res.Trace.Len())
	}
	if *gantt && res.Trace != nil {
		scale := s.Hyperperiod() / 100
		if scale < 1 {
			scale = 1
		}
		fmt.Println()
		fmt.Print(trace.Gantt(res.Trace, s, scale, 0))
	}
	if interrupted() {
		// The signal arrived during the simulation; everything above is
		// complete and flushed, but the caller asked the run to stop — the
		// exit code says so.
		os.Exit(cli.ExitInterrupted)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "impsched:", err)
	os.Exit(1)
}
