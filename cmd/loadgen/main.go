// Command loadgen drives one or more impserve admission endpoints and
// reports latency and throughput, so the group-commit ingest path has a
// measured number instead of a believed one.
//
// Usage:
//
//	loadgen -url http://127.0.0.1:8080 -mode closed -conns 16 -duration 10s
//	loadgen -url ... -mode open -rate 2000 -duration 10s -out report.json
//	loadgen -url ... -batch 32                 # POST /admit/batch
//	loadgen -url ... -p99-max 50ms -fail-on-error   # smoke assertion
//	loadgen -target http://h1:8080 -target http://h2:8080 ...  # fan out
//
// Two load models:
//
//   - closed: -conns clients, each with ONE outstanding request — the
//     classic closed loop. Latency is measured from send to response.
//     Throughput self-adjusts to the server; queues cannot build.
//   - open: requests fire on a fixed schedule of -rate per second,
//     regardless of how the server is doing. Latency is measured from the
//     SCHEDULED send time, so server-side queueing is charged to the
//     request that suffered it (no coordinated omission).
//
// With repeated -target flags the stream round-robins across endpoints
// request by request (client-side sharding); the report carries one
// latency block per target next to the merged totals.
//
// The event stream is deterministic in -seed: adds and removes over a
// cyclic set of -names task names, so the server's working set stays
// bounded and a rerun with the same seed offers the same work. Widening
// -names raises the offered admission load past one scheduler's Theorem-1
// capacity — the knob the cluster-scaling benchmark turns. Duplicate adds
// and unknown removes come back 409 (stale); that is expected churn,
// counted separately from errors.
//
// A 503 shed is not final: the client honors the server's backoff
// guidance (millisecond-resolution Retry-After-Ms when present, else the
// standard Retry-After), sleeping at most -retry-max, and re-sends up to
// -retries times. The report splits shed (budget exhausted) from
// retried/recovered, so transient backpressure — a shard mid-failover —
// reads differently from capacity the cluster truly refused. Responses are parsed for verdicts, so
// the report separates *admitted* adds (the capacity headline) from
// feasibility rejections.
//
// With -deadline-ms every request carries an X-Deadline-Ms header — the
// server's admission gate sheds up front when its predicted queue wait
// already exceeds the deadline, instead of accepting work whose answer
// will arrive too late. The report then splits goodput (replies that made
// the deadline) from deadline misses (late replies), the number that
// actually matters to a real-time client.
//
// Latencies land in an HDR-style histogram (log2 buckets, 64 sub-buckets:
// ≤1.6% relative error), from which the report takes p50/p90/p99/p999.
// The report is JSON on stdout (or -out), ending with a scrape of each
// server's /state so records-per-sync lands next to the latency it bought.
//
// Exit codes: 0 ok · 1 internal error · 2 bad flags · 3 assertion failed
// (-p99-max exceeded or -fail-on-error with errors > 0).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/bits"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	runtimepkg "nprt/internal/runtime"
	"nprt/internal/task"
)

const (
	exitOK           = 0
	exitInternal     = 1
	exitInvalidInput = 2
	exitAssertFailed = 3
)

func main() {
	os.Exit(run())
}

// --- HDR-style histogram ------------------------------------------------

// hist is a log2/64-sub-bucket histogram of nanosecond latencies, the
// HdrHistogram layout at 6 bits of sub-bucket precision: values up to 64ns
// are exact, beyond that the relative error is ≤ 2^-6.
type hist struct {
	counts []uint64
	total  uint64
	sum    uint64
	max    uint64
}

const histBuckets = 58 * 64 // covers the full uint64 range

func newHist() *hist { return &hist{counts: make([]uint64, histBuckets)} }

func bucketIdx(v uint64) int {
	if v < 64 {
		return int(v)
	}
	exp := bits.Len64(v) - 7 // halvings to bring v into [64,128)
	return exp*64 + int(v>>uint(exp))
}

// bucketValue is the midpoint of bucket i, the inverse of bucketIdx.
func bucketValue(i int) uint64 {
	if i < 64 {
		return uint64(i)
	}
	exp := uint(i/64 - 1)
	sub := uint64(i%64 + 64)
	return sub<<exp + 1<<exp/2
}

func (h *hist) record(d time.Duration) {
	v := uint64(d)
	h.counts[bucketIdx(v)]++
	h.total++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

func (h *hist) merge(o *hist) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// quantile returns the latency at fraction q (0 < q ≤ 1).
func (h *hist) quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	rank := uint64(q * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			return time.Duration(bucketValue(i))
		}
	}
	return time.Duration(h.max)
}

func (h *hist) mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.sum / h.total)
}

// --- seeded event stream ------------------------------------------------

// events builds the n'th request payload: -batch events, each an add or a
// remove over a cyclic set of `names` task names. Deterministic in
// (seed, n, names).
func events(seed uint64, n uint64, batch, names int) []runtimepkg.Event {
	rng := rand.New(rand.NewSource(int64(seed ^ n*0x9e3779b97f4a7c15)))
	evs := make([]runtimepkg.Event, batch)
	for i := range evs {
		name := fmt.Sprintf("lg%d", rng.Intn(names))
		if rng.Intn(2) == 0 {
			w := task.Time(8 + rng.Intn(8))
			evs[i] = runtimepkg.Event{Op: "add", Task: &runtimepkg.TaskSpec{Task: task.Task{
				Name: name, Period: task.Time(40 + 20*rng.Intn(3)),
				WCETAccurate: w, WCETImprecise: w / 3,
				ExecAccurate:  task.Dist{Mean: float64(w) * 0.6, Sigma: 1, Min: 1, Max: float64(w)},
				ExecImprecise: task.Dist{Mean: float64(w) * 0.2, Sigma: 0.3, Min: 0.5, Max: float64(w) / 3},
				Error:         task.Dist{Mean: 2, Sigma: 0.5},
			}}}
		} else {
			evs[i] = runtimepkg.Event{Op: "remove", Name: name}
		}
	}
	return evs
}

// --- report -------------------------------------------------------------

type latencyReport struct {
	P50Micros  float64 `json:"p50_us"`
	P90Micros  float64 `json:"p90_us"`
	P99Micros  float64 `json:"p99_us"`
	P999Micros float64 `json:"p999_us"`
	MaxMicros  float64 `json:"max_us"`
	MeanMicros float64 `json:"mean_us"`
}

// targetReport is one endpoint's slice of a multi-target run.
type targetReport struct {
	URL            string        `json:"url"`
	Requests       uint64        `json:"requests"`
	OK             uint64        `json:"ok"`
	Stale          uint64        `json:"stale"`
	Shed           uint64        `json:"shed"`
	Errors         uint64        `json:"errors"`
	Admits         uint64        `json:"admits"`
	Retried        uint64        `json:"retried"`
	Recovered      uint64        `json:"recovered"`
	Goodput        uint64        `json:"goodput,omitempty"`
	DeadlineMisses uint64        `json:"deadline_misses,omitempty"`
	Latency        latencyReport `json:"latency"`
}

type report struct {
	Mode       string   `json:"mode"`
	URLs       []string `json:"urls"`
	Conns      int      `json:"conns"`
	Batch      int      `json:"batch"`
	Names      int      `json:"names"`
	TargetRate float64  `json:"target_rate,omitempty"`
	Seed       uint64   `json:"seed"`
	DurationS  float64  `json:"duration_s"`

	Requests uint64 `json:"requests"`
	Events   uint64 `json:"events"`
	OK       uint64 `json:"ok"`
	Stale    uint64 `json:"stale"`
	Shed     uint64 `json:"shed"`
	Errors   uint64 `json:"errors"`

	// Retried counts 503 responses that were retried after honoring the
	// server's Retry-After guidance; Recovered counts requests that then
	// landed. Shed counts only requests whose retry budget ran dry, so
	// Shed vs Retried/Recovered separates transient backpressure from
	// capacity the cluster truly refused.
	Retried   uint64 `json:"retried"`
	Recovered uint64 `json:"recovered"`

	// With -deadline-ms set, Goodput counts OK replies that arrived within
	// the deadline and DeadlineMisses counts late ones — a reply a real-
	// time client could no longer use, even though the server said 200.
	DeadlineMs     int64  `json:"deadline_ms,omitempty"`
	Goodput        uint64 `json:"goodput,omitempty"`
	DeadlineMisses uint64 `json:"deadline_misses,omitempty"`

	// Admits counts add events whose decision came back admitted (either
	// profile); AddRejects counts feasibility rejections. Their split is
	// what distinguishes a saturated scheduler (flat Admits, climbing
	// AddRejects) from a scaled one.
	Admits     uint64 `json:"admits"`
	AddRejects uint64 `json:"add_rejects"`

	RequestsPerSec float64 `json:"requests_per_sec"`
	EventsPerSec   float64 `json:"events_per_sec"`
	AdmitsPerSec   float64 `json:"admits_per_sec"`
	GoodputPerSec  float64 `json:"goodput_per_sec,omitempty"`

	Latency latencyReport  `json:"latency"`
	Targets []targetReport `json:"targets,omitempty"`

	ServerState []json.RawMessage `json:"server_state,omitempty"`

	// ShardHealth summarizes per-shard containment state scraped from each
	// cluster target's /state: shed requests during the run read next to
	// which shard was degraded or failed and why. Absent for single-node
	// targets (their /state has no per-shard rows).
	ShardHealth []shardHealthRow `json:"shard_health,omitempty"`
}

// shardHealthRow is one shard's health as scraped from /state.
type shardHealthRow struct {
	URL        string `json:"url"`
	Shard      int    `json:"shard"`
	State      string `json:"state"`
	ConsecErrs int    `json:"consec_errs,omitempty"`
	TotalErrs  uint64 `json:"total_errs,omitempty"`
	Reopens    uint64 `json:"reopens,omitempty"`
	Reimages   uint64 `json:"reimages,omitempty"`
	LastError  string `json:"last_error,omitempty"`
}

// scrapeShardHealth pulls the per-shard health rows out of a raw /state
// body. Best-effort: a single-node /state (no per_shard) yields nothing.
func scrapeShardHealth(url string, body []byte) []shardHealthRow {
	var st struct {
		PerShard []struct {
			Shard  int `json:"shard"`
			Health struct {
				State      string `json:"state"`
				ConsecErrs int    `json:"consec_errs"`
				TotalErrs  uint64 `json:"total_errs"`
				Reopens    uint64 `json:"reopens"`
				Reimages   uint64 `json:"reimages"`
				LastError  string `json:"last_error"`
			} `json:"health"`
		} `json:"per_shard"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		return nil
	}
	rows := make([]shardHealthRow, 0, len(st.PerShard))
	for _, sh := range st.PerShard {
		rows = append(rows, shardHealthRow{
			URL: url, Shard: sh.Shard, State: sh.Health.State,
			ConsecErrs: sh.Health.ConsecErrs, TotalErrs: sh.Health.TotalErrs,
			Reopens: sh.Health.Reopens, Reimages: sh.Health.Reimages,
			LastError: sh.Health.LastError,
		})
	}
	return rows
}

func micros(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

func latencyOf(h *hist) latencyReport {
	return latencyReport{
		P50Micros:  micros(h.quantile(0.50)),
		P90Micros:  micros(h.quantile(0.90)),
		P99Micros:  micros(h.quantile(0.99)),
		P999Micros: micros(h.quantile(0.999)),
		MaxMicros:  micros(time.Duration(h.max)),
		MeanMicros: micros(h.mean()),
	}
}

// --- worker -------------------------------------------------------------

// tstat is one worker's ledger for one target.
type tstat struct {
	h          *hist
	ok         uint64
	stale      uint64
	shed       uint64
	errs       uint64
	reqs       uint64
	events     uint64
	admits     uint64
	addRejects uint64
	retried    uint64
	recovered  uint64
	good       uint64
	dmiss      uint64
}

type worker struct {
	per []tstat // indexed by target
}

// decisionBody is the minimal shape of both admit responses (single-node
// and cluster, single and batch): enough to count verdicts.
type decisionBody struct {
	Decision  *wireDecision  `json:"decision"`
	Error     string         `json:"error"`
	Decisions []verdictEntry `json:"decisions"`
}

type wireDecision struct {
	Op      string `json:"op"`
	Verdict int    `json:"verdict"`
}

type verdictEntry struct {
	Decision wireDecision `json:"decision"`
	Error    string       `json:"error"`
}

// countVerdicts tallies admitted vs rejected adds out of a 200 response.
func (s *tstat) countVerdicts(body []byte) {
	var d decisionBody
	if err := json.Unmarshal(body, &d); err != nil {
		return // latency and status already counted; verdicts are best-effort
	}
	tally := func(op string, verdict int, errmsg string) {
		if op != "add" || errmsg != "" {
			return
		}
		if verdict == int(runtimepkg.Rejected) {
			s.addRejects++
		} else {
			s.admits++
		}
	}
	if d.Decision != nil {
		tally(d.Decision.Op, d.Decision.Verdict, d.Error)
	}
	for _, e := range d.Decisions {
		tally(e.Decision.Op, e.Decision.Verdict, e.Error)
	}
}

// backoffHint extracts the server's backoff guidance from a 503: the
// millisecond-resolution Retry-After-Ms (the cluster derives it from the
// shed shard's live containment backoff), else the seconds-granular
// standard Retry-After, else zero (caller falls back to exponential).
func backoffHint(resp *http.Response) time.Duration {
	if ms := resp.Header.Get("Retry-After-Ms"); ms != "" {
		if v, err := strconv.ParseInt(ms, 10, 64); err == nil && v >= 0 {
			return time.Duration(v) * time.Millisecond
		}
	}
	if sec := resp.Header.Get("Retry-After"); sec != "" {
		if v, err := strconv.Atoi(sec); err == nil && v >= 0 {
			return time.Duration(v) * time.Second
		}
	}
	return 0
}

// send posts one payload, honoring 503 backoff: a shed response is
// retried up to `retries` times, sleeping the server's Retry-After hint
// (capped at retryMax; exponential fallback when absent) instead of
// hammering a shard that just said when its recovery will next attempt.
// Only a request that exhausts the budget counts as shed; one that lands
// on a retry counts as recovered. Retry sleeps stay inside the measured
// latency, so backoff cost is charged to the request that paid it.
// deadline > 0 is stamped as X-Deadline-Ms so the server's admission gate
// can shed instead of serving an answer that would arrive too late.
// Returns whether the request landed (200).
func (w *worker) send(client *http.Client, ti int, url string, batch int, payload []byte, retries int, retryMax, deadline time.Duration) bool {
	s := &w.per[ti]
	s.reqs++
	s.events += uint64(batch)
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(payload))
		if err != nil {
			s.errs++
			return false
		}
		req.Header.Set("Content-Type", "application/json")
		if deadline > 0 {
			req.Header.Set("X-Deadline-Ms", strconv.FormatInt(deadline.Milliseconds(), 10))
		}
		resp, err := client.Do(req)
		if err != nil {
			s.errs++
			return false
		}
		body, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			s.ok++
			if attempt > 0 {
				s.recovered++
			}
			if rerr == nil {
				s.countVerdicts(body)
			}
			return true
		case resp.StatusCode == http.StatusConflict:
			s.stale++
			return false
		case resp.StatusCode == http.StatusServiceUnavailable:
			if attempt < retries {
				d := backoffHint(resp)
				if d <= 0 {
					d = 50 * time.Millisecond << uint(attempt)
				}
				if d > retryMax {
					d = retryMax
				}
				s.retried++
				time.Sleep(d)
				continue
			}
			s.shed++
			s.errs++
			return false
		default:
			s.errs++
			return false
		}
	}
}

func run() int {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	url := fs.String("url", "http://127.0.0.1:8080", "impserve base URL (single target)")
	var targets []string
	fs.Func("target", "impserve base URL; repeat to round-robin across endpoints (overrides -url)", func(v string) error {
		targets = append(targets, v)
		return nil
	})
	mode := fs.String("mode", "closed", "load model: closed (conns with one outstanding request) or open (fixed schedule of -rate/s)")
	conns := fs.Int("conns", 8, "concurrent client connections")
	rate := fs.Float64("rate", 0, "open mode: target requests per second")
	duration := fs.Duration("duration", 5*time.Second, "measured run length")
	warmup := fs.Duration("warmup", 0, "discard samples from the first part of the run")
	batch := fs.Int("batch", 1, "events per request (1: POST /admit, >1: POST /admit/batch)")
	names := fs.Int("names", 16, "distinct task names in the event stream (widen to raise offered admission load)")
	retries := fs.Int("retries", 3, "retry budget per request for 503 sheds (0 disables; sleeps honor the server's Retry-After)")
	retryMax := fs.Duration("retry-max", time.Second, "cap on a single Retry-After backoff sleep")
	deadlineMs := fs.Int64("deadline-ms", 0, "per-request deadline stamped as X-Deadline-Ms (0: none); replies later than this count as deadline misses, not goodput")
	seed := fs.Uint64("seed", 1, "event-stream seed")
	out := fs.String("out", "", "write the JSON report here (default stdout)")
	p99Max := fs.Duration("p99-max", 0, "exit 3 if p99 latency exceeds this")
	failOnError := fs.Bool("fail-on-error", false, "exit 3 if any request errored (including shed)")
	if err := fs.Parse(os.Args[1:]); err != nil {
		return exitInvalidInput
	}
	if *conns <= 0 || *batch <= 0 || *duration <= 0 || *names <= 0 {
		fmt.Fprintln(os.Stderr, "loadgen: -conns, -batch, -names and -duration must be positive")
		return exitInvalidInput
	}
	if *mode != "closed" && *mode != "open" {
		fmt.Fprintf(os.Stderr, "loadgen: unknown mode %q (closed or open)\n", *mode)
		return exitInvalidInput
	}
	if *mode == "open" && *rate <= 0 {
		fmt.Fprintln(os.Stderr, "loadgen: open mode needs -rate > 0")
		return exitInvalidInput
	}
	if *deadlineMs < 0 {
		fmt.Fprintln(os.Stderr, "loadgen: -deadline-ms must be >= 0")
		return exitInvalidInput
	}
	deadline := time.Duration(*deadlineMs) * time.Millisecond
	if len(targets) == 0 {
		targets = []string{*url}
	}

	endpoints := make([]string, len(targets))
	for i, t := range targets {
		if *batch > 1 {
			endpoints[i] = t + "/admit/batch"
		} else {
			endpoints[i] = t + "/admit"
		}
	}
	client := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        *conns * len(targets),
			MaxIdleConnsPerHost: *conns,
		},
		Timeout: 30 * time.Second,
	}

	// Payloads are pre-marshaled round-robin so encoding cost stays out of
	// the measured latency.
	payloads := make([][]byte, 256)
	for i := range payloads {
		evs := events(*seed, uint64(i), *batch, *names)
		var buf []byte
		var err error
		if *batch == 1 {
			buf, err = json.Marshal(evs[0])
		} else {
			buf, err = json.Marshal(evs)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			return exitInternal
		}
		payloads[i] = buf
	}

	workers := make([]*worker, *conns)
	start := time.Now()
	measureFrom := start.Add(*warmup)
	end := start.Add(*warmup + *duration)
	var seq atomic.Uint64
	var wg sync.WaitGroup
	for c := 0; c < *conns; c++ {
		w := &worker{per: make([]tstat, len(targets))}
		for i := range w.per {
			w.per[i].h = newHist()
		}
		workers[c] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := seq.Add(1) - 1
				var sched time.Time
				if *mode == "open" {
					sched = start.Add(time.Duration(float64(n) / *rate * float64(time.Second)))
					if sched.After(end) {
						return
					}
					time.Sleep(time.Until(sched))
				} else {
					sched = time.Now()
					if sched.After(end) {
						return
					}
				}
				ti := int(n % uint64(len(targets)))
				landed := w.send(client, ti, endpoints[ti], *batch, payloads[n%uint64(len(payloads))], *retries, *retryMax, deadline)
				lat := time.Since(sched)
				if sched.After(measureFrom) {
					w.per[ti].h.record(lat)
				}
				if landed && deadline > 0 {
					if lat <= deadline {
						w.per[ti].good++
					} else {
						w.per[ti].dmiss++
					}
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(measureFrom)
	if elapsed <= 0 {
		elapsed = time.Since(start)
	}

	rep := report{
		Mode: *mode, URLs: targets, Conns: *conns, Batch: *batch, Names: *names,
		TargetRate: *rate, Seed: *seed, DurationS: elapsed.Seconds(),
		DeadlineMs: *deadlineMs,
	}
	h := newHist()
	for ti, t := range targets {
		th := newHist()
		tr := targetReport{URL: t}
		for _, w := range workers {
			s := &w.per[ti]
			th.merge(s.h)
			tr.Requests += s.reqs
			tr.OK += s.ok
			tr.Stale += s.stale
			tr.Shed += s.shed
			tr.Errors += s.errs
			tr.Admits += s.admits
			tr.Retried += s.retried
			tr.Recovered += s.recovered
			tr.Goodput += s.good
			tr.DeadlineMisses += s.dmiss
			rep.Requests += s.reqs
			rep.Events += s.events
			rep.OK += s.ok
			rep.Stale += s.stale
			rep.Shed += s.shed
			rep.Errors += s.errs
			rep.Admits += s.admits
			rep.AddRejects += s.addRejects
			rep.Retried += s.retried
			rep.Recovered += s.recovered
			rep.Goodput += s.good
			rep.DeadlineMisses += s.dmiss
		}
		tr.Latency = latencyOf(th)
		h.merge(th)
		if len(targets) > 1 {
			rep.Targets = append(rep.Targets, tr)
		}
	}
	rep.RequestsPerSec = float64(rep.Requests) / elapsed.Seconds()
	rep.EventsPerSec = float64(rep.Events) / elapsed.Seconds()
	rep.AdmitsPerSec = float64(rep.Admits) / elapsed.Seconds()
	if deadline > 0 {
		rep.GoodputPerSec = float64(rep.Goodput) / elapsed.Seconds()
	}
	rep.Latency = latencyOf(h)
	for _, t := range targets {
		if resp, err := client.Get(t + "/state"); err == nil {
			if body, err := io.ReadAll(resp.Body); err == nil && resp.StatusCode == http.StatusOK {
				rep.ServerState = append(rep.ServerState, json.RawMessage(body))
				rep.ShardHealth = append(rep.ShardHealth, scrapeShardHealth(t, body)...)
			}
			resp.Body.Close()
		}
	}
	for _, row := range rep.ShardHealth {
		if row.State != "" && row.State != "healthy" {
			fmt.Fprintf(os.Stderr, "loadgen: %s shard %d %s (consec_errs %d, last_error %q)\n",
				row.URL, row.Shard, row.State, row.ConsecErrs, row.LastError)
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		return exitInternal
	}
	buf = append(buf, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			return exitInternal
		}
	} else {
		os.Stdout.Write(buf)
	}

	code := exitOK
	if *failOnError && rep.Errors > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d errored requests (fail-on-error)\n", rep.Errors)
		code = exitAssertFailed
	}
	if *p99Max > 0 && h.quantile(0.99) > *p99Max {
		fmt.Fprintf(os.Stderr, "loadgen: p99 %.0fµs exceeds bound %v\n", rep.Latency.P99Micros, *p99Max)
		code = exitAssertFailed
	}
	return code
}
