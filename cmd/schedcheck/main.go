// Command schedcheck runs the Theorem-1 schedulability analysis on a task
// set — either one of the paper's built-in testcases or a JSON file — and
// prints the verdict for both accuracy modes, the γ scaling factors and
// the per-task individual slacks the ESR scheduler would reclaim.
//
// Usage:
//
//	schedcheck -case Rnd7
//	schedcheck -file tasks.json
//	schedcheck -list
//
// Exit codes (for scripting):
//
//	0  the set is imprecise-mode schedulable
//	1  internal error
//	2  invalid input (unknown case, unreadable or malformed task file)
//	3  the input is valid but not imprecise-mode schedulable
package main

import (
	"flag"
	"fmt"
	"os"

	"nprt"
	"nprt/internal/cli"
	"nprt/internal/feasibility"
	"nprt/internal/preemptive"
	"nprt/internal/task"
	"nprt/internal/workload"
)

const (
	exitOK            = 0
	exitInternal      = 1
	exitInvalidInput  = 2
	exitUnschedulable = 3
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("schedcheck", flag.ContinueOnError)
	caseName := fs.String("case", "", "built-in testcase name (Rnd1..Rnd13, IDCT, Newton)")
	file := fs.String("file", "", "JSON task-set file (array of Task objects)")
	list := fs.Bool("list", false, "list built-in testcases")
	verbose := fs.Bool("v", false, "print condition-2 violations")
	if err := fs.Parse(os.Args[1:]); err != nil {
		return exitInvalidInput
	}

	if *list {
		return listCases()
	}
	s, err := loadSet(*caseName, *file)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedcheck:", err)
		return exitInvalidInput
	}

	fmt.Print(s.String())
	schedulable := false
	for _, m := range []task.Mode{task.Accurate, task.Imprecise} {
		rep := nprt.CheckSchedulability(s, m)
		if m == task.Imprecise {
			schedulable = rep.Schedulable
		}
		fmt.Printf("\n%s mode: schedulable=%v utilization=%.4f γ_util=%.4f γ_min=%.4f\n",
			m, rep.Schedulable, rep.Utilization, rep.GammaUtil, rep.GammaMin)
		if rep.ArgMinTask >= 0 {
			fmt.Printf("  γ_min attained at task %d, L=%d\n", rep.ArgMinTask, rep.ArgMinL)
		}
		if *verbose {
			for _, v := range rep.Violations {
				fmt.Printf("  violation: %s\n", v)
			}
		}
	}

	// Preemptive reference (§II contrast): condition (1) alone decides.
	for _, m := range []task.Mode{task.Accurate, task.Imprecise} {
		ref := preemptive.RunEDF(s, m, 4)
		fmt.Printf("\npreemptive EDF reference, %s mode: %d/%d deadline misses over 4 hyper-periods\n",
			m, ref.Misses, ref.Jobs)
	}

	slacks := feasibility.IndividualSlacks(s)
	fmt.Println("\nindividual slacks ψ_i = (γ_min − 1)·x_i (imprecise-mode analysis):")
	for i := 0; i < s.Len(); i++ {
		fmt.Printf("  %-16s ψ=%d\n", s.Task(i).Name, slacks[i])
	}
	if !schedulable {
		return exitUnschedulable
	}
	return exitOK
}

func loadSet(caseName, file string) (*nprt.TaskSet, error) {
	if caseName == "" && file == "" {
		return nil, fmt.Errorf("specify -case <name> or -file <tasks.json> (see -list)")
	}
	return cli.LoadSet(caseName, file)
}

func listCases() int {
	cases, err := workload.CachedCases()
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedcheck:", err)
		return exitInternal
	}
	for _, c := range cases {
		s, err := c.Set()
		if err != nil {
			// A broken built-in table is a bug in this repository, not in
			// the user's input.
			fmt.Fprintf(os.Stderr, "schedcheck: built-in case %s: %v\n", c.Name, err)
			return exitInternal
		}
		fmt.Printf("%-7s %2d tasks  U_acc=%.2f  %3d jobs/P\n",
			c.Name, s.Len(), s.UtilizationAccurate(), s.JobsPerHyperperiod())
	}
	fmt.Println("Newton  3 tasks  (prototype case, §VI-B)")
	return exitOK
}
