// Command schedcheck runs the Theorem-1 schedulability analysis on a task
// set — either one of the paper's built-in testcases or a JSON file — and
// prints the verdict for both accuracy modes, the γ scaling factors and
// the per-task individual slacks the ESR scheduler would reclaim.
//
// Usage:
//
//	schedcheck -case Rnd7
//	schedcheck -file tasks.json
//	schedcheck -list
package main

import (
	"flag"
	"fmt"
	"os"

	"nprt"
	"nprt/internal/cli"
	"nprt/internal/feasibility"
	"nprt/internal/preemptive"
	"nprt/internal/task"
	"nprt/internal/workload"
)

func main() {
	caseName := flag.String("case", "", "built-in testcase name (Rnd1..Rnd13, IDCT, Newton)")
	file := flag.String("file", "", "JSON task-set file (array of Task objects)")
	list := flag.Bool("list", false, "list built-in testcases")
	verbose := flag.Bool("v", false, "print condition-2 violations")
	flag.Parse()

	if *list {
		listCases()
		return
	}
	s, err := loadSet(*caseName, *file)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedcheck:", err)
		os.Exit(1)
	}

	fmt.Print(s.String())
	for _, m := range []task.Mode{task.Accurate, task.Imprecise} {
		rep := nprt.CheckSchedulability(s, m)
		fmt.Printf("\n%s mode: schedulable=%v utilization=%.4f γ_util=%.4f γ_min=%.4f\n",
			m, rep.Schedulable, rep.Utilization, rep.GammaUtil, rep.GammaMin)
		if rep.ArgMinTask >= 0 {
			fmt.Printf("  γ_min attained at task %d, L=%d\n", rep.ArgMinTask, rep.ArgMinL)
		}
		if *verbose {
			for _, v := range rep.Violations {
				fmt.Printf("  violation: %s\n", v)
			}
		}
	}

	// Preemptive reference (§II contrast): condition (1) alone decides.
	for _, m := range []task.Mode{task.Accurate, task.Imprecise} {
		ref := preemptive.RunEDF(s, m, 4)
		fmt.Printf("\npreemptive EDF reference, %s mode: %d/%d deadline misses over 4 hyper-periods\n",
			m, ref.Misses, ref.Jobs)
	}

	slacks := feasibility.IndividualSlacks(s)
	fmt.Println("\nindividual slacks ψ_i = (γ_min − 1)·x_i (imprecise-mode analysis):")
	for i := 0; i < s.Len(); i++ {
		fmt.Printf("  %-16s ψ=%d\n", s.Task(i).Name, slacks[i])
	}
}

func loadSet(caseName, file string) (*nprt.TaskSet, error) {
	if caseName == "" && file == "" {
		return nil, fmt.Errorf("specify -case <name> or -file <tasks.json> (see -list)")
	}
	return cli.LoadSet(caseName, file)
}

func listCases() {
	cases, err := workload.CachedCases()
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedcheck:", err)
		os.Exit(1)
	}
	for _, c := range cases {
		s := c.MustSet()
		fmt.Printf("%-7s %2d tasks  U_acc=%.2f  %3d jobs/P\n",
			c.Name, s.Len(), s.UtilizationAccurate(), s.JobsPerHyperperiod())
	}
	fmt.Println("Newton  3 tasks  (prototype case, §VI-B)")
}
