package main

// impserve -fsck: the offline integrity scrub. Recovery tolerates a torn
// journal tail by design, which means it would also silently truncate
// away *corruption* near the tail; and a checkpoint is only read when
// recovery happens to pick it. The scrub closes both gaps: it walks every
// store under -dir — single store, cluster shards, their replica slots,
// and the router's meta journal — verifying every WAL frame CRC and every
// checkpoint's framing offline, and exits 6 with a per-file report when
// any of them would lose data on its next recovery.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"nprt/internal/journal"
	schedrt "nprt/internal/runtime"
)

// fsckFinding is one problem the scrub will report.
type fsckFinding struct {
	path   string
	detail string
	benign bool
}

// runFsck scrubs every checkpoint and WAL segment under -dir and reports.
func runFsck(fs flags) int {
	root := *fs.dir
	if root == "" {
		fmt.Fprintln(os.Stderr, "impserve: -fsck needs -dir")
		return exitInvalidInput
	}
	if _, err := os.Stat(root); err != nil {
		fmt.Fprintln(os.Stderr, "impserve:", err)
		return exitInvalidInput
	}

	var findings []fsckFinding
	journals, ckpts, snaps := 0, 0, 0
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(root, path)
		switch {
		case d.IsDir() && (d.Name() == "wal" || d.Name() == "meta"):
			rep, err := journal.Check(path)
			if err != nil {
				return err
			}
			journals++
			fmt.Printf("journal:     %-28s %d segments, %d records (last %d)\n",
				rel, rep.Segments, rep.Records, rep.Last)
			for _, p := range rep.Problems {
				findings = append(findings, fsckFinding{
					path:   filepath.Join(rel, p.File),
					detail: fmt.Sprintf("offset %d: %s", p.Offset, p.Detail),
					benign: p.Benign,
				})
			}
			return filepath.SkipDir // segments are scrubbed; don't re-walk them
		case d.IsDir():
			return nil
		case strings.HasPrefix(d.Name(), "ckpt-") && strings.HasSuffix(d.Name(), ".ckpt"):
			ckpts++
			if _, _, err := schedrt.ReadCheckpointFile(path); err != nil {
				findings = append(findings, fsckFinding{path: rel, detail: err.Error()})
			} else {
				fmt.Printf("checkpoint:  %-28s ok\n", rel)
			}
		case d.Name() == "meta.snap":
			snaps++
			// The router snapshot is plain JSON; a parse is its full check.
			if _, err := readMetaSnapFile(path); err != nil {
				findings = append(findings, fsckFinding{path: rel, detail: err.Error()})
			} else {
				fmt.Printf("meta-snap:   %-28s ok\n", rel)
			}
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "impserve: fsck:", err)
		return exitInternal
	}
	if journals+ckpts+snaps == 0 {
		fmt.Fprintf(os.Stderr, "impserve: fsck: nothing to scrub under %s\n", root)
		return exitInvalidInput
	}

	sort.Slice(findings, func(i, j int) bool { return findings[i].path < findings[j].path })
	corrupt := 0
	for _, f := range findings {
		verdict := "CORRUPT"
		if f.benign {
			verdict = "benign"
		} else {
			corrupt++
		}
		fmt.Printf("%-12s %s: %s\n", verdict+":", f.path, f.detail)
	}
	fmt.Printf("fsck:        %d journals, %d checkpoints, %d meta snapshots; %d corrupt, %d benign\n",
		journals, ckpts, snaps, corrupt, len(findings)-corrupt)
	if corrupt > 0 {
		return exitCorrupt
	}
	return exitOK
}

// readMetaSnapFile validates the cluster's meta.snap without importing the
// cluster's unexported snapshot type: well-formed JSON object or bust.
func readMetaSnapFile(path string) (map[string]any, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("corrupt meta snapshot: %w", err)
	}
	return m, nil
}
