// Cluster modes: with -shards N > 1 the durable tape and serve modes run
// a partition-aware router over N shard stores instead of one store. The
// contract is unchanged — same tape, same exit codes, same signal
// handling, same crash-only recovery — the state is just wider.
package main

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"nprt/internal/cluster"
	schedrt "nprt/internal/runtime"
	"nprt/internal/serve"
)

// clusterStoreOptions is the per-shard store template shared by both
// cluster modes — the same knobs runDurable/runServe hand OpenStore.
func clusterStoreOptions(fs flags, opts schedrt.Options, fsyncs *int) schedrt.StoreOptions {
	return schedrt.StoreOptions{
		Runtime:     opts,
		AfterSync:   crashHook(fs, fsyncs),
		CommitBatch: *fs.commitBatch,
		CommitDelay: *fs.commitDelay,
	}
}

func printClusterRecovery(fs flags, c *cluster.Cluster) {
	rec := c.Recovery()
	replayed := 0
	for _, sr := range rec.Shards {
		replayed += sr.ReplayedEvents + sr.ReplayedEpochs
	}
	if rec.Cursor == 0 && replayed == 0 && rec.ReplayedPlacements == 0 {
		return
	}
	fmt.Printf("restored:    %s at epoch %d (cursor %d, %d placements replayed, %d adopted, %d dropped)\n",
		*fs.dir, c.Epoch(), rec.Cursor, rec.ReplayedPlacements, rec.Adopted, rec.Dropped)
}

// clusterDigest folds the per-shard digests into one run identity, so the
// sweep's single digest line compares whole-cluster recoveries.
func clusterDigest(c *cluster.Cluster) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, d := range c.Digests() {
		binary.BigEndian.PutUint64(buf[:], d)
		h.Write(buf[:])
	}
	return h.Sum64()
}

func printClusterSummary(c *cluster.Cluster, horizon int64) {
	m := c.Metrics()
	fmt.Printf("shards:      %d (placement %s)\n", len(c.Shards()), c.Policy().Name())
	fmt.Printf("epochs:      %d (of horizon %d)\n", c.Epoch(), horizon)
	fmt.Printf("jobs:        %d, misses %d (%d in degraded windows)\n",
		m.Jobs, m.Misses, m.MissesDegraded)
	fmt.Printf("admission:   %d admitted (%d degraded), %d rejected, %d removed\n",
		m.Admits, m.AdmitsDegraded, m.Rejects, m.Removes)
	for _, sh := range c.Shards() {
		fmt.Printf("shard %03d:   %d tasks, digest %016x\n", sh.ID, sh.Resident(), sh.Store.Digest())
	}
	fmt.Printf("digest:      %016x\n", clusterDigest(c))
}

// runDurableCluster is runDurable at cluster width: the tape plays one
// epoch at a time (the signal boundary) through the serial router — the
// durable resume contract (skip exactly the journaled sequence prefix)
// holds only when events become durable in tape order. -shard-parallel
// opts into the concurrent group-commit drive for throughput runs that
// accept replay-from-checkpoint on interruption.
func runDurableCluster(fs flags) int {
	if *fs.tape == "" {
		fmt.Fprintln(os.Stderr, "impserve: -dir needs -tape (or -listen for the HTTP service)")
		return exitInvalidInput
	}
	if *fs.restore != "" || *fs.checkpoint != "" {
		fmt.Fprintln(os.Stderr, "impserve: -dir manages its own checkpoints; drop -restore/-checkpoint")
		return exitInvalidInput
	}
	tp, err := readTape(*fs.tape, *fs.strict)
	if err != nil {
		fmt.Fprintln(os.Stderr, "impserve:", err)
		return exitInvalidInput
	}
	opts, code := runtimeOptions(fs)
	if code != exitOK {
		return code
	}

	fsyncs := 0
	c, err := cluster.Open(*fs.dir, cluster.Options{
		Shards:        *fs.shards,
		Replicas:      *fs.replicas,
		Placement:     *fs.placement,
		Store:         clusterStoreOptions(fs, opts, &fsyncs),
		LatencySLO:    *fs.latencySLO,
		AdmitDeadline: *fs.deadline,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "impserve: opening cluster %s: %v\n", *fs.dir, err)
		return exitInvalidInput
	}
	defer c.Close()
	printClusterRecovery(fs, c)

	horizon := tapeHorizon(fs, tp)
	jsonl, code := openJSONL(fs)
	if jsonl != nil {
		defer jsonl.Close()
	} else if code != exitOK {
		return code
	}

	stop := make(chan os.Signal, 2)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(stop)

	onEpoch := func(rep cluster.ShardEpoch) {
		if jsonl != nil {
			if err := json.NewEncoder(jsonl).Encode(rep); err != nil {
				fmt.Fprintln(os.Stderr, "impserve: epoch log:", err)
			}
		}
		if !*fs.quiet && rep.Report.ActionName != "" {
			fmt.Printf("epoch %d: shard %d governor %s (shed %v, window mean %.2f)\n",
				rep.Report.Epoch, rep.Shard, rep.Report.ActionName, rep.Report.Shed, rep.Report.WindowMean)
		}
	}
	onDecision := func(ev schedrt.Event, res cluster.Result) {
		if !*fs.quiet {
			fmt.Printf("epoch %d: shard %d: %s %s: %s%s\n",
				c.Epoch(), res.Shard, res.Decision.Op, res.Decision.Task,
				res.Decision.Verdict, reason(res.Decision))
		}
	}

	every := *fs.ckptEvery
	interrupted := false
	for c.Epoch() < horizon && !interrupted {
		select {
		case sig := <-stop:
			fmt.Fprintf(os.Stderr, "impserve: %v: state is durable at epoch %d\n", sig, c.Epoch())
			interrupted = true
			continue
		default:
		}
		err := c.PlayTape(tp, c.Epoch()+1, *fs.shardParallel, 0,
			onEpoch, onDecision, staleTolerant(fs, c.Epoch))
		if err != nil {
			fmt.Fprintln(os.Stderr, "impserve:", err)
			return exitInternal
		}
		if every > 0 && c.Epoch()%int64(every) == 0 {
			if err := c.Checkpoint(); err != nil {
				fmt.Fprintln(os.Stderr, "impserve:", err)
				return exitInternal
			}
		}
		if rb := *fs.rebalanceEvery; rb > 0 && c.Epoch()%int64(rb) == 0 {
			moves, err := c.Rebalance(cluster.RebalanceOptions{})
			if err != nil {
				fmt.Fprintln(os.Stderr, "impserve: rebalance:", err)
				return exitInternal
			}
			for _, mv := range moves {
				if !*fs.quiet {
					fmt.Printf("epoch %d: rebalance: %s shard %d -> %d\n", c.Epoch(), mv.Name, mv.From, mv.To)
				}
			}
		}
	}

	if err := c.Checkpoint(); err != nil {
		fmt.Fprintln(os.Stderr, "impserve:", err)
		return exitInternal
	}
	printClusterSummary(c, horizon)
	fmt.Printf("fsyncs:      %d\n", fsyncs)
	if interrupted {
		return exitInterrupted
	}
	return exitOK
}

// runServeCluster is runServe at cluster width: the same bind-first
// listener, handler indirection and supervisor, but each incarnation
// recovers the whole cluster and attaches the partition-aware server —
// every /admit routes through placement, /state aggregates the shards.
func runServeCluster(fs flags) int {
	opts, code := runtimeOptions(fs)
	if code != exitOK {
		return code
	}

	ln, err := net.Listen("tcp", *fs.listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "impserve:", err)
		return exitInvalidInput
	}
	fmt.Printf("listening:   %s (%d shards, placement %s)\n", ln.Addr(), *fs.shards, *fs.placement)

	var current atomic.Pointer[http.Handler]
	httpSrv := &http.Server{
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if h := current.Load(); h != nil {
				(*h).ServeHTTP(w, r)
				return
			}
			if r.URL.Path == "/healthz" {
				fmt.Fprintln(w, "ok")
				return
			}
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error": "restarting"}`, http.StatusServiceUnavailable)
		}),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	go httpSrv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fsyncs := 0
	sup := &serve.Supervisor{
		MaxRestarts: *fs.maxRestarts,
		ResetAfter:  *fs.restartReset,
		OnRestart: func(attempt int, err error, delay time.Duration) {
			fmt.Fprintf(os.Stderr, "impserve: incarnation %d died (%v); restarting in %v\n", attempt, err, delay)
		},
	}
	err = sup.Run(ctx, func(ctx context.Context) error {
		c, err := cluster.Open(*fs.dir, cluster.Options{
			Shards:        *fs.shards,
			Replicas:      *fs.replicas,
			Placement:     *fs.placement,
			Store:         clusterStoreOptions(fs, opts, &fsyncs),
			RelaxedMeta:   true,
			LatencySLO:    *fs.latencySLO,
			AdmitDeadline: *fs.deadline,
		})
		if err != nil {
			return err
		}
		defer c.Close()
		printClusterRecovery(fs, c)

		srv := cluster.NewServer(cluster.ServeOptions{
			QueueDepth:      *fs.queue,
			EpochInterval:   *fs.epochEvery,
			CheckpointEvery: *fs.ckptEvery,
			CoDelTarget:     *fs.codelTarget,
			StuckOpAfter:    *fs.watchdog,
			Logf:            func(f string, a ...any) { fmt.Fprintf(os.Stderr, "impserve: "+f+"\n", a...) },
		})
		h := srv.Handler()
		current.Store(&h)
		defer current.Store(nil)
		srv.Attach(c)

		select {
		case err := <-srv.Fatal():
			shctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			srv.Shutdown(shctx)
			return err
		case <-ctx.Done():
			shctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := srv.Shutdown(shctx); err != nil {
				return fmt.Errorf("drain: %w", err)
			}
			fmt.Printf("drained:     epoch %d\n", c.Epoch())
			fmt.Printf("epochs:      %d\n", c.Epoch())
			fmt.Printf("digest:      %016x\n", clusterDigest(c))
			return nil
		}
	})
	switch {
	case err == nil, errors.Is(err, context.Canceled):
		return exitOK
	case errors.Is(err, serve.ErrRestartBudget):
		fmt.Fprintln(os.Stderr, "impserve:", err)
		return exitBudget
	default:
		fmt.Fprintln(os.Stderr, "impserve:", err)
		return exitInternal
	}
}
