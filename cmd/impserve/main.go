// Command impserve runs the long-running scheduler runtime as a daemon:
// an admission-controlled task set that churns over an event tape, with
// the overload governor live and checkpoint/restore across restarts.
//
// Usage:
//
//	impserve -gen 2000 -seed 1 -tape churn.json      # write a churn tape
//	impserve -tape churn.json -checkpoint state.json # serve it
//	impserve -restore state.json -tape churn.json    # resume after a kill
//
// The daemon advances one epoch at a time. On SIGINT or SIGTERM it
// finishes the epoch in flight, writes the checkpoint atomically
// (temp file + rename) and exits with code 4; restarting with -restore
// resumes bit-identically to a run that was never interrupted — the final
// digest is the proof (compare the "digest" lines).
//
// Exit codes (extending the schedcheck convention, where 3 means
// unschedulable):
//
//	0  the tape was played to the horizon
//	1  internal error
//	2  invalid input (unreadable tape or checkpoint, bad flags)
//	4  interrupted by signal; state checkpointed if -checkpoint was given
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"nprt/internal/experiments"
	schedrt "nprt/internal/runtime"
	"nprt/internal/sim"
)

const (
	exitOK           = 0
	exitInternal     = 1
	exitInvalidInput = 2
	exitInterrupted  = 4
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := newFlagSet()
	if err := fs.fs.Parse(os.Args[1:]); err != nil {
		return exitInvalidInput
	}

	if *fs.gen > 0 {
		return generate(fs)
	}

	if *fs.tape == "" {
		fmt.Fprintln(os.Stderr, "impserve: -tape is required (or -gen N to create one)")
		return exitInvalidInput
	}
	tp, err := readTape(*fs.tape)
	if err != nil {
		fmt.Fprintln(os.Stderr, "impserve:", err)
		return exitInvalidInput
	}

	r, code := makeRuntime(fs)
	if r == nil {
		return code
	}

	horizon := *fs.epochs
	if horizon <= 0 {
		horizon = 32
		if n := len(tp.Events); n > 0 {
			horizon += tp.Events[n-1].Epoch
		}
	}
	if r.Epoch() >= horizon {
		fmt.Fprintf(os.Stderr, "impserve: checkpoint is already at epoch %d, horizon is %d\n",
			r.Epoch(), horizon)
		return exitInvalidInput
	}

	var jsonl *os.File
	if *fs.jsonl != "" {
		jsonl, err = os.Create(*fs.jsonl)
		if err != nil {
			fmt.Fprintln(os.Stderr, "impserve:", err)
			return exitInternal
		}
		defer jsonl.Close()
	}

	// One Play call per epoch so the signal check lands exactly on epoch
	// boundaries: an epoch is the unit of commitment, so it is also the
	// unit of interruption.
	stop := make(chan os.Signal, 2)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(stop)

	interrupted := false
	for r.Epoch() < horizon && !interrupted {
		select {
		case sig := <-stop:
			fmt.Fprintf(os.Stderr, "impserve: %v: checkpointing at epoch %d\n", sig, r.Epoch())
			interrupted = true
			continue
		default:
		}
		err := r.Play(tp, r.Epoch()+1, func(rep schedrt.EpochReport) {
			if jsonl != nil {
				if err := json.NewEncoder(jsonl).Encode(rep); err != nil {
					fmt.Fprintln(os.Stderr, "impserve: epoch log:", err)
				}
			}
			if !*fs.quiet && rep.ActionName != "" {
				fmt.Printf("epoch %d: governor %s (shed %v, window mean %.2f)\n",
					rep.Epoch, rep.ActionName, rep.Shed, rep.WindowMean)
			}
		}, func(ev schedrt.Event, d schedrt.Decision) {
			if !*fs.quiet {
				fmt.Printf("epoch %d: %s %s: %s%s\n", r.Epoch(), d.Op, d.Task, d.Verdict, reason(d))
			}
		}, func(ev schedrt.Event, err error) error {
			if schedrt.IsStaleRequest(err) {
				if !*fs.quiet {
					fmt.Printf("epoch %d: stale request ignored: %v\n", r.Epoch(), err)
				}
				return nil
			}
			return err
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "impserve:", err)
			return exitInternal
		}
	}

	if *fs.checkpoint != "" {
		if err := writeCheckpoint(*fs.checkpoint, r); err != nil {
			fmt.Fprintln(os.Stderr, "impserve:", err)
			return exitInternal
		}
		fmt.Printf("checkpoint:  %s\n", *fs.checkpoint)
	}
	m := r.Metrics()
	fmt.Printf("epochs:      %d (of horizon %d)\n", r.Epoch(), horizon)
	fmt.Printf("jobs:        %d, misses %d (%d in degraded windows)\n",
		m.Jobs, m.Misses, m.MissesDegraded)
	fmt.Printf("admission:   %d admitted (%d degraded), %d rejected, %d removed\n",
		m.Admits, m.AdmitsDegraded, m.Rejects, m.Removes)
	fmt.Printf("governor:    %d sheds, %d restores, %d overload windows\n",
		m.Sheds, m.Restores, m.Overloads)
	fmt.Printf("digest:      %016x\n", r.Digest())
	if interrupted {
		return exitInterrupted
	}
	return exitOK
}

type flags struct {
	fs         *flag.FlagSet
	tape       *string
	epochs     *int64
	hp         *int
	seed       *uint64
	engine     *string
	checkpoint *string
	restore    *string
	jsonl      *string
	quiet      *bool
	gen        *int
}

func newFlagSet() flags {
	fs := flag.NewFlagSet("impserve", flag.ContinueOnError)
	return flags{
		fs:         fs,
		tape:       fs.String("tape", "", "event tape (JSON; see -gen)"),
		epochs:     fs.Int64("epochs", 0, "horizon in epochs (default: last tape event + 32)"),
		hp:         fs.Int("hp", 1, "hyper-periods per epoch"),
		seed:       fs.Uint64("seed", 1, "root random seed (ignored with -restore)"),
		engine:     fs.String("engine", "indexed", "dispatch engine: indexed or linear"),
		checkpoint: fs.String("checkpoint", "", "write the state snapshot here on exit or signal"),
		restore:    fs.String("restore", "", "resume from this snapshot instead of starting fresh"),
		jsonl:      fs.String("jsonl", "", "append one JSON epoch report per line to this file"),
		quiet:      fs.Bool("quiet", false, "suppress per-decision and governor logging"),
		gen:        fs.Int("gen", 0, "generate a churn tape with this many events into -tape and exit"),
	}
}

// makeRuntime builds the runtime from flags — fresh or from a checkpoint.
func makeRuntime(fs flags) (*schedrt.Runtime, int) {
	if *fs.restore != "" {
		f, err := os.Open(*fs.restore)
		if err != nil {
			fmt.Fprintln(os.Stderr, "impserve:", err)
			return nil, exitInvalidInput
		}
		defer f.Close()
		r, err := schedrt.Restore(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "impserve: restoring %s: %v\n", *fs.restore, err)
			return nil, exitInvalidInput
		}
		fmt.Printf("restored:    %s at epoch %d (digest %016x)\n", *fs.restore, r.Epoch(), r.Digest())
		return r, exitOK
	}
	var engine sim.EngineKind
	switch *fs.engine {
	case "indexed":
		engine = sim.EngineIndexed
	case "linear":
		engine = sim.EngineLinearScan
	default:
		fmt.Fprintf(os.Stderr, "impserve: unknown engine %q (indexed or linear)\n", *fs.engine)
		return nil, exitInvalidInput
	}
	r, err := schedrt.New(schedrt.Options{
		Seed:              *fs.seed,
		Engine:            engine,
		EpochHyperperiods: *fs.hp,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "impserve:", err)
		return nil, exitInvalidInput
	}
	return r, exitOK
}

// generate writes a churn tape to -tape (or stdout) and exits.
func generate(fs flags) int {
	tp := experiments.GenerateChurnTape(*fs.seed, *fs.gen)
	var w io.Writer = os.Stdout
	if *fs.tape != "" {
		f, err := os.Create(*fs.tape)
		if err != nil {
			fmt.Fprintln(os.Stderr, "impserve:", err)
			return exitInternal
		}
		defer f.Close()
		w = f
	}
	if err := schedrt.EncodeTape(w, tp); err != nil {
		fmt.Fprintln(os.Stderr, "impserve:", err)
		return exitInternal
	}
	if *fs.tape != "" {
		fmt.Printf("tape:        %s (%d events, seed %d)\n", *fs.tape, len(tp.Events), *fs.seed)
	}
	return exitOK
}

func readTape(path string) (*schedrt.Tape, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return schedrt.DecodeTape(f)
}

// writeCheckpoint snapshots atomically: a crash mid-write must never
// destroy the previous good snapshot.
func writeCheckpoint(path string, r *schedrt.Runtime) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if err := schedrt.EncodeCheckpoint(tmp, r.Checkpoint()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func reason(d schedrt.Decision) string {
	if d.Reason == "" {
		return ""
	}
	return " (" + d.Reason + ")"
}
