// Command impserve runs the long-running scheduler runtime as a daemon:
// an admission-controlled task set that churns over an event tape, with
// the overload governor live and durable state across restarts.
//
// Usage:
//
//	impserve -gen 2000 -seed 1 -tape churn.json      # write a churn tape
//	impserve -tape churn.json -checkpoint state.json # serve it (in-memory)
//	impserve -restore state.json -tape churn.json    # resume after a kill
//	impserve -tape churn.json -dir state/            # serve it (durable WAL)
//	impserve -dir state/ -listen 127.0.0.1:8080      # supervised HTTP service
//	impserve -sweep -sweep-out sweep.json            # crash-point sweep proof
//	impserve -fsck -dir state/                       # offline integrity scrub
//
// The daemon advances one epoch at a time. On SIGINT or SIGTERM it
// finishes the epoch in flight, makes the state durable, and exits with
// code 4 (tape modes) or 0 (serve mode, after a graceful drain);
// restarting resumes bit-identically to a run that was never interrupted
// — the final digest is the proof (compare the "digest" lines).
//
// With -dir the state is crash-only: every mutation is journaled to a
// write-ahead log before it is applied, and restart recovers from the
// newest good checkpoint plus a digest-cross-checked replay. -sweep holds
// the proof obligation mechanically — it re-executes this binary, killing
// it at every fsync boundary (exit code 7), and verifies each recovery
// reaches the uncrashed digest on both dispatch engines.
//
// Exit codes (extending the schedcheck convention, where 3 means
// unschedulable):
//
//	0  the tape was played to the horizon / the service drained cleanly /
//	   the sweep passed
//	1  internal error, or a sweep point failed to recover
//	2  invalid input (unreadable tape or checkpoint, bad flags,
//	   -strict lint failure)
//	4  interrupted by signal; state is durable (-dir) or checkpointed
//	   (-checkpoint) at an epoch boundary
//	5  serve mode: restart budget exhausted
//	6  -fsck found silent corruption (CRC mismatch, bad checkpoint)
//	7  self-inflicted crash at an fsync boundary (-crash-after-fsync)
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"nprt/internal/cluster"
	"nprt/internal/experiments"
	schedrt "nprt/internal/runtime"
	"nprt/internal/serve"
	"nprt/internal/sim"
)

const (
	exitOK           = 0
	exitInternal     = 1
	exitInvalidInput = 2
	exitInterrupted  = 4
	exitBudget       = 5
	exitCorrupt      = 6
	exitCrashPoint   = 7
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := newFlagSet()
	if err := fs.fs.Parse(os.Args[1:]); err != nil {
		return exitInvalidInput
	}
	if *fs.shards < 1 {
		fmt.Fprintln(os.Stderr, "impserve: -shards must be at least 1")
		return exitInvalidInput
	}
	if *fs.shards > 1 && *fs.dir == "" && !*fs.sweep {
		fmt.Fprintln(os.Stderr, "impserve: -shards needs -dir (shard stores are durable)")
		return exitInvalidInput
	}

	switch {
	case *fs.fsck:
		return runFsck(fs)
	case *fs.sweep: // before -gen: the sweep reuses -gen as its tape size
		return runSweep(fs)
	case *fs.gen > 0:
		return generate(fs)
	case *fs.listen != "":
		return runServe(fs)
	case *fs.dir != "":
		return runDurable(fs)
	}

	if *fs.tape == "" {
		fmt.Fprintln(os.Stderr, "impserve: -tape is required (or -gen N to create one)")
		return exitInvalidInput
	}
	tp, err := readTape(*fs.tape, *fs.strict)
	if err != nil {
		fmt.Fprintln(os.Stderr, "impserve:", err)
		return exitInvalidInput
	}

	r, code := makeRuntime(fs)
	if r == nil {
		return code
	}

	horizon := tapeHorizon(fs, tp)
	if r.Epoch() >= horizon {
		fmt.Fprintf(os.Stderr, "impserve: checkpoint is already at epoch %d, horizon is %d\n",
			r.Epoch(), horizon)
		return exitInvalidInput
	}

	jsonl, code := openJSONL(fs)
	if jsonl != nil {
		defer jsonl.Close()
	} else if code != exitOK {
		return code
	}

	// One Play call per epoch so the signal check lands exactly on epoch
	// boundaries: an epoch is the unit of commitment, so it is also the
	// unit of interruption.
	stop := make(chan os.Signal, 2)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(stop)

	interrupted := false
	for r.Epoch() < horizon && !interrupted {
		select {
		case sig := <-stop:
			fmt.Fprintf(os.Stderr, "impserve: %v: checkpointing at epoch %d\n", sig, r.Epoch())
			interrupted = true
			continue
		default:
		}
		err := r.Play(tp, r.Epoch()+1,
			epochLogger(fs, jsonl),
			decisionLogger(fs, r.Epoch),
			staleTolerant(fs, r.Epoch))
		if err != nil {
			fmt.Fprintln(os.Stderr, "impserve:", err)
			return exitInternal
		}
	}

	if *fs.checkpoint != "" {
		if err := writeCheckpoint(*fs.checkpoint, r); err != nil {
			fmt.Fprintln(os.Stderr, "impserve:", err)
			return exitInternal
		}
		fmt.Printf("checkpoint:  %s\n", *fs.checkpoint)
	}
	printSummary(r, horizon)
	if interrupted {
		return exitInterrupted
	}
	return exitOK
}

// runDurable is the -dir tape mode: the same play loop, but over a
// crash-only store — every mutation journaled before it is applied, a
// checkpoint every -checkpoint-every epochs, recovery on open.
func runDurable(fs flags) int {
	if *fs.shards > 1 {
		return runDurableCluster(fs)
	}
	if *fs.tape == "" {
		fmt.Fprintln(os.Stderr, "impserve: -dir needs -tape (or -listen for the HTTP service)")
		return exitInvalidInput
	}
	if *fs.restore != "" || *fs.checkpoint != "" {
		fmt.Fprintln(os.Stderr, "impserve: -dir manages its own checkpoints; drop -restore/-checkpoint")
		return exitInvalidInput
	}
	tp, err := readTape(*fs.tape, *fs.strict)
	if err != nil {
		fmt.Fprintln(os.Stderr, "impserve:", err)
		return exitInvalidInput
	}
	opts, code := runtimeOptions(fs)
	if code != exitOK {
		return code
	}

	fsyncs := 0
	st, err := schedrt.OpenStore(*fs.dir, schedrt.StoreOptions{
		Runtime:     opts,
		AfterSync:   crashHook(fs, &fsyncs),
		CommitBatch: *fs.commitBatch,
		CommitDelay: *fs.commitDelay,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "impserve: opening store %s: %v\n", *fs.dir, err)
		return exitInvalidInput
	}
	defer st.Close()
	if rec := st.Recovery(); rec.FromCheckpoint != "" || rec.ReplayedEvents+rec.ReplayedEpochs > 0 {
		fmt.Printf("restored:    %s at epoch %d (digest %016x, %d fallbacks, replayed %d events + %d epochs)\n",
			*fs.dir, rec.Epoch, rec.Digest, rec.CheckpointFallbacks, rec.ReplayedEvents, rec.ReplayedEpochs)
	}

	horizon := tapeHorizon(fs, tp)
	jsonl, code := openJSONL(fs)
	if jsonl != nil {
		defer jsonl.Close()
	} else if code != exitOK {
		return code
	}

	stop := make(chan os.Signal, 2)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(stop)

	every := *fs.ckptEvery
	interrupted := false
	for st.Epoch() < horizon && !interrupted {
		select {
		case sig := <-stop:
			fmt.Fprintf(os.Stderr, "impserve: %v: state is durable at epoch %d\n", sig, st.Epoch())
			interrupted = true
			continue
		default:
		}
		err := st.PlayTape(tp, st.Epoch()+1,
			epochLogger(fs, jsonl),
			decisionLogger(fs, st.Epoch),
			staleTolerant(fs, st.Epoch))
		if err != nil {
			fmt.Fprintln(os.Stderr, "impserve:", err)
			return exitInternal
		}
		if every > 0 && st.Epoch()%int64(every) == 0 {
			if _, err := st.Checkpoint(); err != nil {
				fmt.Fprintln(os.Stderr, "impserve:", err)
				return exitInternal
			}
		}
	}

	// A final checkpoint bounds the next open's replay; the journal alone
	// would recover identically, just more slowly.
	path, err := st.Checkpoint()
	if err != nil {
		fmt.Fprintln(os.Stderr, "impserve:", err)
		return exitInternal
	}
	fmt.Printf("checkpoint:  %s\n", path)
	printSummary(st.Runtime(), horizon)
	fmt.Printf("fsyncs:      %d\n", fsyncs)
	if interrupted {
		return exitInterrupted
	}
	return exitOK
}

// runServe is the supervised HTTP service: the listener binds first (so
// probes see "alive, not ready" instead of connection refused), then each
// supervisor incarnation recovers the store, attaches the control plane,
// and serves until a fatal store error (restart, with backoff) or a
// signal (graceful drain, exit 0).
func runServe(fs flags) int {
	if *fs.dir == "" {
		fmt.Fprintln(os.Stderr, "impserve: -listen needs -dir (the service is durable or it is nothing)")
		return exitInvalidInput
	}
	if *fs.tape != "" {
		fmt.Fprintln(os.Stderr, "impserve: -listen and -tape are exclusive; the service admits over HTTP")
		return exitInvalidInput
	}
	if *fs.shards > 1 {
		return runServeCluster(fs)
	}
	opts, code := runtimeOptions(fs)
	if code != exitOK {
		return code
	}

	ln, err := net.Listen("tcp", *fs.listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "impserve:", err)
		return exitInvalidInput
	}
	fmt.Printf("listening:   %s\n", ln.Addr())

	// The handler indirection outlives any single incarnation: between
	// restarts (and before the first attach) everything but /healthz is 503.
	var current atomic.Pointer[http.Handler]
	httpSrv := &http.Server{
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if h := current.Load(); h != nil {
				(*h).ServeHTTP(w, r)
				return
			}
			if r.URL.Path == "/healthz" {
				fmt.Fprintln(w, "ok")
				return
			}
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error": "restarting"}`, http.StatusServiceUnavailable)
		}),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	go httpSrv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fsyncs := 0
	sup := &serve.Supervisor{
		MaxRestarts: *fs.maxRestarts,
		ResetAfter:  *fs.restartReset,
		OnRestart: func(attempt int, err error, delay time.Duration) {
			fmt.Fprintf(os.Stderr, "impserve: incarnation %d died (%v); restarting in %v\n", attempt, err, delay)
		},
	}
	err = sup.Run(ctx, func(ctx context.Context) error {
		st, err := schedrt.OpenStore(*fs.dir, schedrt.StoreOptions{
			Runtime:     opts,
			AfterSync:   crashHook(fs, &fsyncs),
			CommitBatch: *fs.commitBatch,
			CommitDelay: *fs.commitDelay,
		})
		if err != nil {
			return err
		}
		defer st.Close()
		if rec := st.Recovery(); rec.FromCheckpoint != "" || rec.ReplayedEvents+rec.ReplayedEpochs > 0 {
			fmt.Printf("restored:    %s at epoch %d (digest %016x, %d fallbacks, replayed %d events + %d epochs)\n",
				*fs.dir, rec.Epoch, rec.Digest, rec.CheckpointFallbacks, rec.ReplayedEvents, rec.ReplayedEpochs)
		}

		srv := serve.New(serve.Options{
			QueueDepth:      *fs.queue,
			EpochInterval:   *fs.epochEvery,
			CheckpointEvery: *fs.ckptEvery,
			CoDelTarget:     *fs.codelTarget,
			Logf:            func(f string, a ...any) { fmt.Fprintf(os.Stderr, "impserve: "+f+"\n", a...) },
		})
		h := srv.Handler()
		current.Store(&h)
		defer current.Store(nil)
		srv.Attach(st)

		select {
		case err := <-srv.Fatal():
			shctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			srv.Shutdown(shctx)
			return err
		case <-ctx.Done():
			// Graceful drain: bar the door, apply everything accepted,
			// leave the journal clean. Exit 0 — recovery needs nothing.
			shctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := srv.Shutdown(shctx); err != nil {
				return fmt.Errorf("drain: %w", err)
			}
			fmt.Printf("drained:     epoch %d\n", st.Epoch())
			fmt.Printf("epochs:      %d\n", st.Epoch())
			fmt.Printf("digest:      %016x\n", st.Digest())
			return nil
		}
	})
	switch {
	case err == nil, errors.Is(err, context.Canceled):
		return exitOK
	case errors.Is(err, serve.ErrRestartBudget):
		fmt.Fprintln(os.Stderr, "impserve:", err)
		return exitBudget
	default:
		fmt.Fprintln(os.Stderr, "impserve:", err)
		return exitInternal
	}
}

// crashHook returns the AfterSync hook: count fsync boundaries and, with
// -crash-after-fsync N, die with exit 7 at the Nth — mid-operation, no
// cleanup, exactly like a power cut that respected fsync ordering.
func crashHook(fs flags, fsyncs *int) func() {
	return func() {
		*fsyncs++
		if *fs.crashAfter > 0 && *fsyncs == *fs.crashAfter {
			fmt.Fprintf(os.Stderr, "impserve: crash point %d reached\n", *fs.crashAfter)
			os.Exit(exitCrashPoint)
		}
	}
}

// --- crash-point sweep -------------------------------------------------

// sweepPoint is one kill-and-recover probe in the sweep artifact.
type sweepPoint struct {
	Point           int    `json:"point"`
	CrashExit       int    `json:"crash_exit"`
	RecoveredDigest string `json:"recovered_digest"`
	Restored        bool   `json:"restored"`
	OK              bool   `json:"ok"`
}

type sweepEngine struct {
	Engine         string       `json:"engine"`
	Fsyncs         int          `json:"fsyncs"`
	BaselineDigest string       `json:"baseline_digest"`
	Points         []sweepPoint `json:"points"`
	AllOK          bool         `json:"all_ok"`
}

type sweepReport struct {
	Seed    uint64        `json:"seed"`
	Events  int           `json:"events"`
	Horizon int64         `json:"horizon,omitempty"`
	Engines []sweepEngine `json:"engines"`
	AllOK   bool          `json:"all_ok"`
}

// runSweep is the mechanical crash-consistency proof: generate a churn
// tape, run it once uncrashed per engine to learn the fsync count K and
// the reference digest, then for every point 1..K re-execute this binary
// with -crash-after-fsync (expect exit 7) and once more to recover
// (expect exit 0 and the reference digest). Any divergence fails the
// sweep.
func runSweep(fs flags) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "impserve:", err)
		return exitInternal
	}
	root := *fs.dir
	if root == "" {
		root, err = os.MkdirTemp("", "impserve-sweep-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, "impserve:", err)
			return exitInternal
		}
		defer os.RemoveAll(root)
	} else if err := os.MkdirAll(root, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "impserve:", err)
		return exitInternal
	}

	events := *fs.gen
	if events <= 0 {
		events = 12
	}
	tp := experiments.GenerateChurnTape(*fs.seed, events)
	tapePath := filepath.Join(root, "tape.json")
	if code := writeTape(tapePath, tp); code != exitOK {
		return code
	}

	engines := []string{"indexed", "linear"}
	if *fs.sweepEngine != "" {
		engines = []string{*fs.sweepEngine}
	}
	report := sweepReport{Seed: *fs.seed, Events: len(tp.Events), Horizon: *fs.epochs, AllOK: true}

	common := []string{"-tape", tapePath, "-seed", fmt.Sprint(*fs.seed),
		"-hp", fmt.Sprint(*fs.hp), "-quiet"}
	if *fs.epochs > 0 {
		common = append(common, "-epochs", fmt.Sprint(*fs.epochs))
	}
	// The sweep proves whatever width it is asked about: with -shards the
	// children run the cluster tape mode, and the digest line under
	// comparison is the folded whole-cluster digest. -replicas rides along,
	// so the sweep can also prove crash recovery with followers attached.
	if *fs.shards > 1 {
		common = append(common, "-shards", fmt.Sprint(*fs.shards))
		if *fs.placement != "" {
			common = append(common, "-placement", *fs.placement)
		}
		if *fs.replicas > 0 {
			common = append(common, "-replicas", fmt.Sprint(*fs.replicas))
		}
	}
	for _, eng := range engines {
		args := append([]string{"-engine", eng}, common...)
		baseDir := filepath.Join(root, eng+"-baseline")
		out, code, err := runSelf(exe, append(args, "-dir", baseDir)...)
		if err != nil || code != exitOK {
			fmt.Fprintf(os.Stderr, "impserve: sweep baseline (%s) exited %d: %v\n%s\n", eng, code, err, out)
			return exitInternal
		}
		baseline := outputField(out, "digest:")
		k := 0
		fmt.Sscanf(outputField(out, "fsyncs:"), "%d", &k)
		if baseline == "" || k == 0 {
			fmt.Fprintf(os.Stderr, "impserve: sweep baseline (%s) output missing digest/fsyncs:\n%s\n", eng, out)
			return exitInternal
		}

		er := sweepEngine{Engine: eng, Fsyncs: k, BaselineDigest: baseline, AllOK: true}
		for p := 1; p <= k; p++ {
			dir := filepath.Join(root, fmt.Sprintf("%s-p%03d", eng, p))
			pt := sweepPoint{Point: p}
			_, pt.CrashExit, _ = runSelf(exe, append(args, "-dir", dir, "-crash-after-fsync", fmt.Sprint(p))...)
			out, code, _ := runSelf(exe, append(args, "-dir", dir)...)
			pt.RecoveredDigest = outputField(out, "digest:")
			pt.Restored = strings.Contains(out, "restored:")
			pt.OK = pt.CrashExit == exitCrashPoint && code == exitOK && pt.RecoveredDigest == baseline
			if !pt.OK {
				er.AllOK = false
				report.AllOK = false
				fmt.Fprintf(os.Stderr, "impserve: sweep point %s/%d FAILED: crash exit %d, recover exit %d, digest %q (want %q)\n",
					eng, p, pt.CrashExit, code, pt.RecoveredDigest, baseline)
			}
			er.Points = append(er.Points, pt)
			os.RemoveAll(dir)
		}
		recovered := 0
		for _, pt := range er.Points {
			if pt.OK {
				recovered++
			}
		}
		fmt.Printf("sweep:       engine %s: %d/%d crash points recovered to digest %s\n",
			eng, recovered, k, baseline)
		report.Engines = append(report.Engines, er)
	}

	if *fs.sweepOut != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err == nil {
			err = os.WriteFile(*fs.sweepOut, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "impserve:", err)
			return exitInternal
		}
		fmt.Printf("sweep-out:   %s\n", *fs.sweepOut)
	}
	if !report.AllOK {
		return exitInternal
	}
	return exitOK
}

// runSelf re-executes this binary with args, returning combined output
// and the exit code.
func runSelf(exe string, args ...string) (string, int, error) {
	cmd := exec.Command(exe, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		var ee *exec.ExitError
		if errors.As(err, &ee) {
			return string(out), ee.ExitCode(), nil
		}
		return string(out), -1, err
	}
	return string(out), 0, nil
}

// outputField extracts the value of a "label:  value" summary line.
func outputField(out, label string) string {
	for _, line := range strings.Split(out, "\n") {
		if rest, ok := strings.CutPrefix(line, label); ok {
			return strings.Fields(rest)[0]
		}
	}
	return ""
}

// --- shared helpers ----------------------------------------------------

type flags struct {
	fs         *flag.FlagSet
	tape       *string
	epochs     *int64
	hp         *int
	seed       *uint64
	engine     *string
	checkpoint *string
	restore    *string
	jsonl      *string
	quiet      *bool
	gen        *int

	dir         *string
	strict      *bool
	ckptEvery   *int
	listen      *string
	queue       *int
	epochEvery  *time.Duration
	maxRestarts *int
	commitBatch *int
	commitDelay *time.Duration
	crashAfter  *int
	sweep       *bool
	sweepOut    *string
	sweepEngine *string

	shards         *int
	replicas       *int
	placement      *string
	shardParallel  *bool
	rebalanceEvery *int
	restartReset   *time.Duration
	fsck           *bool

	latencySLO  *time.Duration
	deadline    *time.Duration
	codelTarget *time.Duration
	watchdog    *time.Duration
}

func newFlagSet() flags {
	fs := flag.NewFlagSet("impserve", flag.ContinueOnError)
	return flags{
		fs:         fs,
		tape:       fs.String("tape", "", "event tape (JSON; see -gen)"),
		epochs:     fs.Int64("epochs", 0, "horizon in epochs (default: last tape event + 32)"),
		hp:         fs.Int("hp", 1, "hyper-periods per epoch"),
		seed:       fs.Uint64("seed", 1, "root random seed (ignored with -restore)"),
		engine:     fs.String("engine", "indexed", "dispatch engine: indexed or linear"),
		checkpoint: fs.String("checkpoint", "", "write the state snapshot here on exit or signal"),
		restore:    fs.String("restore", "", "resume from this snapshot instead of starting fresh"),
		jsonl:      fs.String("jsonl", "", "append one JSON epoch report per line to this file"),
		quiet:      fs.Bool("quiet", false, "suppress per-decision and governor logging"),
		gen:        fs.Int("gen", 0, "generate a churn tape with this many events into -tape and exit"),

		dir:         fs.String("dir", "", "durable state directory (write-ahead journal + checkpoints)"),
		strict:      fs.Bool("strict", false, "reject tapes with duplicate adds, unknown removes or non-monotonic epochs"),
		ckptEvery:   fs.Int("checkpoint-every", 8, "durable modes: checkpoint every N epochs"),
		listen:      fs.String("listen", "", "serve mode: HTTP control plane address (requires -dir)"),
		queue:       fs.Int("queue", 16, "serve mode: admission queue depth (load-shed beyond it)"),
		epochEvery:  fs.Duration("epoch-interval", 50*time.Millisecond, "serve mode: run an epoch this often (0 disables)"),
		maxRestarts: fs.Int("max-restarts", 5, "serve mode: supervisor restart budget"),
		commitBatch: fs.Int("commit-batch", 0, "durable modes: max records per group commit (0: default 64)"),
		commitDelay: fs.Duration("commit-delay", 0, "durable modes: group-commit stall window (0: default 500µs, negative disables)"),
		crashAfter:  fs.Int("crash-after-fsync", 0, "testing: exit 7 at the Nth fsync boundary"),
		sweep:       fs.Bool("sweep", false, "run the crash-point sweep (kill at every fsync, verify recovery digests) and exit"),
		sweepOut:    fs.String("sweep-out", "", "sweep mode: write the JSON artifact here"),
		sweepEngine: fs.String("sweep-engine", "", "sweep mode: restrict to one engine (default: both)"),

		shards:         fs.Int("shards", 1, "durable modes: partition the state across this many shard stores"),
		replicas:       fs.Int("replicas", 0, "cluster modes: synchronous followers per shard (0 disables replication)"),
		placement:      fs.String("placement", "", "cluster placement policy: "+strings.Join(cluster.PolicyNames(), ", ")+" (default first-fit)"),
		shardParallel:  fs.Bool("shard-parallel", false, "cluster tape mode: concurrent group-commit drive (durable resume needs the serial default)"),
		rebalanceEvery: fs.Int("rebalance-every", 0, "cluster tape mode: run the skew-triggered rebalancer every N epochs (0 disables)"),
		restartReset:   fs.Duration("restart-reset", 0, "serve mode: forgive the restart budget after an incarnation stays up this long (0 disables)"),
		fsck:           fs.Bool("fsck", false, "scrub every checkpoint and WAL segment under -dir offline and exit (6 on corruption)"),

		latencySLO:  fs.Duration("latency-slo", 0, "cluster modes: fence a shard from placement when its windowed WAL-sojourn p99 exceeds this; with replicas, proactively promote away from the slow primary (0 disables)"),
		deadline:    fs.Duration("deadline", 0, "cluster modes: default admission deadline — shed routes to over-SLO shards instead of blowing it (0 disables; per-request X-Deadline-Ms still honored)"),
		codelTarget: fs.Duration("codel-target", 0, "serve modes: CoDel sojourn target for adaptive admission-queue shedding (0 disables; deadline sheds and drain-rate Retry-After hints stay on)"),
		watchdog:    fs.Duration("watchdog", 0, "cluster serve mode: flag a shard Slow when its engine sits inside one store op longer than this (0 disables)"),
	}
}

func runtimeOptions(fs flags) (schedrt.Options, int) {
	var engine sim.EngineKind
	switch *fs.engine {
	case "indexed":
		engine = sim.EngineIndexed
	case "linear":
		engine = sim.EngineLinearScan
	default:
		fmt.Fprintf(os.Stderr, "impserve: unknown engine %q (indexed or linear)\n", *fs.engine)
		return schedrt.Options{}, exitInvalidInput
	}
	return schedrt.Options{
		Seed:              *fs.seed,
		Engine:            engine,
		EpochHyperperiods: *fs.hp,
	}, exitOK
}

// makeRuntime builds the in-memory runtime from flags — fresh or from a
// legacy checkpoint.
func makeRuntime(fs flags) (*schedrt.Runtime, int) {
	if *fs.restore != "" {
		f, err := os.Open(*fs.restore)
		if err != nil {
			fmt.Fprintln(os.Stderr, "impserve:", err)
			return nil, exitInvalidInput
		}
		defer f.Close()
		r, err := schedrt.Restore(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "impserve: restoring %s: %v\n", *fs.restore, err)
			return nil, exitInvalidInput
		}
		fmt.Printf("restored:    %s at epoch %d (digest %016x)\n", *fs.restore, r.Epoch(), r.Digest())
		return r, exitOK
	}
	opts, code := runtimeOptions(fs)
	if code != exitOK {
		return nil, code
	}
	r, err := schedrt.New(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "impserve:", err)
		return nil, exitInvalidInput
	}
	return r, exitOK
}

// tapeHorizon computes the play horizon: -epochs, or the tape's last
// event plus settle time.
func tapeHorizon(fs flags, tp *schedrt.Tape) int64 {
	if *fs.epochs > 0 {
		return *fs.epochs
	}
	horizon := int64(32)
	if n := len(tp.Events); n > 0 {
		horizon += tp.Events[n-1].Epoch
	}
	return horizon
}

func openJSONL(fs flags) (*os.File, int) {
	if *fs.jsonl == "" {
		return nil, exitOK
	}
	f, err := os.Create(*fs.jsonl)
	if err != nil {
		fmt.Fprintln(os.Stderr, "impserve:", err)
		return nil, exitInternal
	}
	return f, exitOK
}

func epochLogger(fs flags, jsonl *os.File) func(schedrt.EpochReport) {
	return func(rep schedrt.EpochReport) {
		if jsonl != nil {
			if err := json.NewEncoder(jsonl).Encode(rep); err != nil {
				fmt.Fprintln(os.Stderr, "impserve: epoch log:", err)
			}
		}
		if !*fs.quiet && rep.ActionName != "" {
			fmt.Printf("epoch %d: governor %s (shed %v, window mean %.2f)\n",
				rep.Epoch, rep.ActionName, rep.Shed, rep.WindowMean)
		}
	}
}

func decisionLogger(fs flags, epoch func() int64) func(schedrt.Event, schedrt.Decision) {
	return func(ev schedrt.Event, d schedrt.Decision) {
		if !*fs.quiet {
			fmt.Printf("epoch %d: %s %s: %s%s\n", epoch(), d.Op, d.Task, d.Verdict, reason(d))
		}
	}
}

func staleTolerant(fs flags, epoch func() int64) func(schedrt.Event, error) error {
	return func(ev schedrt.Event, err error) error {
		if schedrt.IsStaleRequest(err) {
			if !*fs.quiet {
				fmt.Printf("epoch %d: stale request ignored: %v\n", epoch(), err)
			}
			return nil
		}
		return err
	}
}

func printSummary(r *schedrt.Runtime, horizon int64) {
	m := r.Metrics()
	fmt.Printf("epochs:      %d (of horizon %d)\n", r.Epoch(), horizon)
	fmt.Printf("jobs:        %d, misses %d (%d in degraded windows)\n",
		m.Jobs, m.Misses, m.MissesDegraded)
	fmt.Printf("admission:   %d admitted (%d degraded), %d rejected, %d removed\n",
		m.Admits, m.AdmitsDegraded, m.Rejects, m.Removes)
	fmt.Printf("governor:    %d sheds, %d restores, %d overload windows\n",
		m.Sheds, m.Restores, m.Overloads)
	fmt.Printf("digest:      %016x\n", r.Digest())
}

// generate writes a churn tape to -tape (or stdout) and exits.
func generate(fs flags) int {
	tp := experiments.GenerateChurnTape(*fs.seed, *fs.gen)
	if *fs.tape == "" {
		if err := schedrt.EncodeTape(os.Stdout, tp); err != nil {
			fmt.Fprintln(os.Stderr, "impserve:", err)
			return exitInternal
		}
		return exitOK
	}
	if code := writeTape(*fs.tape, tp); code != exitOK {
		return code
	}
	fmt.Printf("tape:        %s (%d events, seed %d)\n", *fs.tape, len(tp.Events), *fs.seed)
	return exitOK
}

func writeTape(path string, tp *schedrt.Tape) int {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "impserve:", err)
		return exitInternal
	}
	defer f.Close()
	if err := schedrt.EncodeTape(f, tp); err != nil {
		fmt.Fprintln(os.Stderr, "impserve:", err)
		return exitInternal
	}
	return exitOK
}

func readTape(path string, strict bool) (*schedrt.Tape, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strict {
		return schedrt.DecodeTapeStrict(f)
	}
	return schedrt.DecodeTape(f)
}

// writeCheckpoint snapshots atomically: a crash mid-write must never
// destroy the previous good snapshot.
func writeCheckpoint(path string, r *schedrt.Runtime) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if err := schedrt.EncodeCheckpoint(tmp, r.Checkpoint()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func reason(d schedrt.Decision) string {
	if d.Reason == "" {
		return ""
	}
	return " (" + d.Reason + ")"
}
