// Command benchjson converts `go test -bench` text output into JSON so
// benchmark baselines can be committed and diffed (BENCH_ILP.json) and
// uploaded as CI artifacts.
//
// Usage:
//
//	go test -run xxx -bench ILPOffline -benchtime 1x . | benchjson > out.json
//	benchjson -in bench.txt -out BENCH_ILP.json
//
// Lines that are not benchmark results (headers, PASS/ok trailers) pass
// through into the "env" section when they carry machine context (goos,
// goarch, pkg, cpu) and are dropped otherwise.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"nprt/internal/benchparse"
)

func main() {
	in := flag.String("in", "", "input file (default: stdin)")
	out := flag.String("out", "", "output file (default: stdout)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	report, err := benchparse.Parse(bufio.NewReader(r))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := benchparse.WriteJSON(w, report); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
