package nprt

// Differential test for the simulator's dispatch core: the indexed-heap
// engine (EngineIndexed, the default) must produce bit-identical Results to
// the retained linear-scan reference (EngineLinearScan) for every policy
// family, every cached testcase, several seeds, and sporadic (jittered)
// releases. "Bit-identical" is literal: job counts, miss counters, Welford
// accumulator states (mean, M2, min, max), mode counts, busy time and the
// execution trace are compared field by field, so even a reordering of
// floating-point additions would fail the test.

import (
	"fmt"
	"testing"

	"nprt/internal/cumulative"
	"nprt/internal/esr"
	"nprt/internal/offline"
	"nprt/internal/policy"
	"nprt/internal/sim"
	"nprt/internal/stats"
	"nprt/internal/task"
	"nprt/internal/workload"
)

var diffSeeds = []uint64{1, 2, 3}

// diffPolicies builds one long-lived policy instance per method for a set;
// sim.Run resets policies, so each instance serves every (engine, seed)
// combination — offline schedules are built once, not per run.
func diffPolicies(t *testing.T, s *task.Set) map[string]sim.Policy {
	t.Helper()
	ps := map[string]sim.Policy{}
	for _, m := range []string{
		"EDF-Accurate", "EDF-Imprecise", "EDF+ESR", "EDF+ESR(C)",
		"ILP+OA", "ILP+Post+OA", "Flipped EDF",
	} {
		p, err := buildDiffPolicy(m, s)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		ps[m] = p
	}
	ps["RM-Imprecise"] = policy.NewRMImprecise()
	return ps
}

func buildDiffPolicy(method string, s *task.Set) (sim.Policy, error) {
	switch method {
	case "EDF-Accurate":
		return policy.NewEDFAccurate(), nil
	case "EDF-Imprecise":
		return policy.NewEDFImprecise(), nil
	case "EDF+ESR":
		return esr.New(), nil
	case "EDF+ESR(C)":
		return cumulative.NewESR(), nil
	case "ILP+OA":
		return offline.NewILPOABestEffort(s)
	case "ILP+Post+OA":
		return offline.NewILPPostOABestEffort(s)
	case "Flipped EDF":
		return offline.NewFlippedEDFBestEffort(s)
	}
	return nil, fmt.Errorf("unknown method %q", method)
}

// requireIdentical compares every field of two Results, including the
// internal accumulator states and the trace.
func requireIdentical(t *testing.T, label string, a, b *sim.Result) {
	t.Helper()
	if a.Policy != b.Policy || a.Jobs != b.Jobs || a.Misses != b.Misses ||
		a.Accurate != b.Accurate || a.Imprecise != b.Imprecise ||
		a.Busy != b.Busy || a.Horizon != b.Horizon || a.Aborted != b.Aborted ||
		a.MaxLateness != b.MaxLateness {
		t.Fatalf("%s: scalar fields differ:\n  indexed: %+v\n  linear:  %+v", label, a, b)
	}
	if a.Error != b.Error {
		t.Fatalf("%s: error accumulators differ: %v±%v(n=%d) vs %v±%v(n=%d)", label,
			a.MeanError(), a.ErrorStdDev(), a.Error.N(),
			b.MeanError(), b.ErrorStdDev(), b.Error.N())
	}
	requireAccsEqual(t, label+"/PerTaskError", a.PerTaskError, b.PerTaskError)
	requireAccsEqual(t, label+"/PerTaskResponse", a.PerTaskResponse, b.PerTaskResponse)
	switch {
	case (a.Trace == nil) != (b.Trace == nil):
		t.Fatalf("%s: one engine recorded a trace, the other did not", label)
	case a.Trace != nil:
		if a.Trace.Len() != b.Trace.Len() {
			t.Fatalf("%s: trace lengths differ: %d vs %d", label, a.Trace.Len(), b.Trace.Len())
		}
		for i := range a.Trace.Entries {
			if a.Trace.Entries[i] != b.Trace.Entries[i] {
				t.Fatalf("%s: trace entry %d differs:\n  indexed: %+v\n  linear:  %+v",
					label, i, a.Trace.Entries[i], b.Trace.Entries[i])
			}
		}
	}
}

func requireAccsEqual(t *testing.T, label string, a, b []stats.Accumulator) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: lengths differ: %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s[%d]: accumulators differ: %v vs %v", label, i, a[i].Mean(), b[i].Mean())
		}
	}
}

// TestEngineDifferentialAllCases pits the indexed engine against the
// linear-scan reference on all 14 cached cases, all policy families and
// three seeds, with traces on.
func TestEngineDifferentialAllCases(t *testing.T) {
	cases, err := workload.CachedCases()
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 14 {
		t.Fatalf("%d cases, want 14", len(cases))
	}
	for _, c := range cases {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			s, err := c.Set()
			if err != nil {
				t.Fatal(err)
			}
			for method, p := range diffPolicies(t, s) {
				for _, seed := range diffSeeds {
					mk := func(engine sim.EngineKind) sim.Config {
						return sim.Config{
							Hyperperiods: 10,
							Sampler:      sim.NewRandomSampler(s, seed),
							DropLate:     method == "EDF-Accurate",
							TraceLimit:   200,
							Engine:       engine,
						}
					}
					indexed, err := sim.Run(s, p, mk(sim.EngineIndexed))
					if err != nil {
						t.Fatalf("%s seed %d indexed: %v", method, seed, err)
					}
					linear, err := sim.Run(s, p, mk(sim.EngineLinearScan))
					if err != nil {
						t.Fatalf("%s seed %d linear: %v", method, seed, err)
					}
					requireIdentical(t, fmt.Sprintf("%s/%s/seed%d", c.Name, method, seed),
						indexed, linear)
				}
			}
		})
	}
}

// TestEngineDifferentialSporadic repeats the comparison under sporadic
// (jittered) releases for the online policies; the offline+OA family
// rejects jitter by design.
func TestEngineDifferentialSporadic(t *testing.T) {
	cases, err := workload.CachedCases()
	if err != nil {
		t.Fatal(err)
	}
	online := []func() sim.Policy{
		func() sim.Policy { return policy.NewEDFImprecise() },
		func() sim.Policy { return esr.New() },
		func() sim.Policy { return cumulative.NewESR() },
		func() sim.Policy { return policy.NewRMImprecise() },
	}
	for _, c := range cases {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			s, err := c.Set()
			if err != nil {
				t.Fatal(err)
			}
			// Jitter on every task: up to 30% of the shortest period.
			dists := make([]task.Dist, s.Len())
			for i := range dists {
				scale := float64(s.Task(i).Period) * 0.3
				dists[i] = task.Dist{Mean: scale / 2, Sigma: scale / 4, Min: 0, Max: scale}
			}
			for _, mkPolicy := range online {
				p := mkPolicy()
				for _, seed := range diffSeeds {
					mk := func(engine sim.EngineKind) sim.Config {
						return sim.Config{
							Hyperperiods: 6,
							Sampler:      sim.NewRandomSampler(s, seed),
							Jitter:       sim.NewRandomJitter(s, dists, seed),
							TraceLimit:   200,
							Engine:       engine,
						}
					}
					indexed, err := sim.Run(s, p, mk(sim.EngineIndexed))
					if err != nil {
						t.Fatalf("%s seed %d indexed: %v", p.Name(), seed, err)
					}
					linear, err := sim.Run(s, p, mk(sim.EngineLinearScan))
					if err != nil {
						t.Fatalf("%s seed %d linear: %v", p.Name(), seed, err)
					}
					requireIdentical(t, fmt.Sprintf("%s/%s/seed%d/sporadic", c.Name, p.Name(), seed),
						indexed, linear)
				}
			}
		})
	}
}

// TestEngineDifferentialDropLateStress drives an overloaded set through the
// DropLate shedding path, where the indexed engine sheds from the heap top
// instead of rescanning, across seeds and both a periodic and a jittered
// release pattern.
func TestEngineDifferentialDropLateStress(t *testing.T) {
	s, err := task.New([]task.Task{
		{Name: "a", Period: 10, WCETAccurate: 9, WCETImprecise: 2, Error: task.Dist{Mean: 1}},
		{Name: "b", Period: 10, WCETAccurate: 9, WCETImprecise: 2, Error: task.Dist{Mean: 2}},
		{Name: "c", Period: 20, WCETAccurate: 7, WCETImprecise: 3, Error: task.Dist{Mean: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range diffSeeds {
		for _, sporadic := range []bool{false, true} {
			mk := func(engine sim.EngineKind) sim.Config {
				cfg := sim.Config{
					Hyperperiods: 50,
					Sampler:      sim.NewRandomSampler(s, seed),
					DropLate:     true,
					TraceLimit:   -1,
					Engine:       engine,
				}
				if sporadic {
					dists := []task.Dist{{Mean: 2, Sigma: 1, Min: 0, Max: 4}, {}, {Mean: 1, Sigma: 1, Min: 0, Max: 3}}
					cfg.Jitter = sim.NewRandomJitter(s, dists, seed)
				}
				return cfg
			}
			p := policy.NewEDFAccurate()
			indexed, err := sim.Run(s, p, mk(sim.EngineIndexed))
			if err != nil {
				t.Fatal(err)
			}
			linear, err := sim.Run(s, p, mk(sim.EngineLinearScan))
			if err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, fmt.Sprintf("droplate/seed%d/sporadic=%v", seed, sporadic),
				indexed, linear)
		}
	}
}
