package nprt

import (
	"strings"
	"testing"
)

func apiSet(t *testing.T) *TaskSet {
	t.Helper()
	s, err := NewTaskSet([]Task{
		{Name: "a", Period: 20, WCETAccurate: 12, WCETImprecise: 4,
			ExecAccurate:  Dist{Mean: 5, Sigma: 1.5, Min: 1, Max: 12},
			ExecImprecise: Dist{Mean: 2, Sigma: 0.6, Min: 1, Max: 4},
			Error:         Dist{Mean: 4, Sigma: 1}, MaxConsecutiveImprecise: 2},
		{Name: "b", Period: 40, WCETAccurate: 16, WCETImprecise: 5,
			ExecAccurate:  Dist{Mean: 7, Sigma: 2, Min: 1, Max: 16},
			ExecImprecise: Dist{Mean: 2.5, Sigma: 0.8, Min: 1, Max: 5},
			Error:         Dist{Mean: 8, Sigma: 2}, MaxConsecutiveImprecise: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPublicAPISchedulability(t *testing.T) {
	s := apiSet(t)
	if Schedulable(s, Accurate) {
		t.Error("over-utilized set schedulable accurate")
	}
	if !Schedulable(s, Imprecise) {
		t.Error("set not schedulable imprecise")
	}
	rep := CheckSchedulability(s, Imprecise)
	if !rep.Schedulable || rep.GammaMin < 1 {
		t.Errorf("report = %+v", rep)
	}
}

func TestPublicAPISimulationRoundTrip(t *testing.T) {
	s := apiSet(t)
	for _, build := range []func() (Policy, error){
		func() (Policy, error) { return NewEDFAccurate(), nil },
		func() (Policy, error) { return NewEDFImprecise(), nil },
		func() (Policy, error) { return NewEDFESR(), nil },
		func() (Policy, error) { return NewILPOA(s) },
		func() (Policy, error) { return NewILPPostOA(s) },
		func() (Policy, error) { return NewFlippedEDF(s) },
		func() (Policy, error) { return NewCumulativeESR(), nil },
	} {
		p, err := build()
		if err != nil {
			t.Fatal(err)
		}
		res, err := Simulate(s, p, SimConfig{
			Hyperperiods: 50,
			Sampler:      NewRandomSampler(s, 3),
			TraceLimit:   -1,
		})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		requireDeadlines := p.Name() != "EDF-Accurate"
		if vs := ValidateTrace(s, res.Trace, requireDeadlines); len(vs) != 0 {
			t.Errorf("%s: %v", p.Name(), vs[0])
		}
		if requireDeadlines && res.Misses.Events != 0 {
			t.Errorf("%s: %d misses", p.Name(), res.Misses.Events)
		}
	}
}

func TestPublicAPICumulativeDP(t *testing.T) {
	s := apiSet(t)
	plan, stats, err := SolveCumulativeDP(s, CumulativeDPOptions{SuperPeriodFactorCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Feasible || plan == nil {
		t.Fatal("DP infeasible on an easy set")
	}
	res, err := Simulate(s, NewCumulativeReplay(plan), SimConfig{Hyperperiods: 20, TraceLimit: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses.Events != 0 {
		t.Errorf("replay missed %d deadlines", res.Misses.Events)
	}
}

func TestLoadTaskSetJSON(t *testing.T) {
	src := `[
	  {"Name":"a","Period":20,"WCETAccurate":12,"WCETImprecise":4,
	   "Error":{"Mean":4,"Sigma":1}},
	  {"Name":"b","Period":40,"WCETAccurate":16,"WCETImprecise":5,
	   "Error":{"Mean":8,"Sigma":2}}
	]`
	s, err := LoadTaskSetJSON(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 || s.Hyperperiod() != 40 {
		t.Errorf("loaded set wrong: n=%d P=%d", s.Len(), s.Hyperperiod())
	}
	if _, err := LoadTaskSetJSON(strings.NewReader(`[{"Nope":1}]`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := LoadTaskSetJSON(strings.NewReader(`[{"Name":"x","Period":0}]`)); err == nil {
		t.Error("invalid task accepted")
	}
}

func TestBestEffortVariantsOnInfeasibleSet(t *testing.T) {
	// Overloaded even in imprecise mode.
	s, err := NewTaskSet([]Task{
		{Name: "a", Period: 10, WCETAccurate: 9, WCETImprecise: 6,
			ExecAccurate:  Dist{Mean: 2, Sigma: 0.5, Min: 1, Max: 9},
			ExecImprecise: Dist{Mean: 1.2, Sigma: 0.2, Min: 1, Max: 6},
			Error:         Dist{Mean: 1}},
		{Name: "b", Period: 10, WCETAccurate: 9, WCETImprecise: 6,
			ExecAccurate:  Dist{Mean: 2, Sigma: 0.5, Min: 1, Max: 9},
			ExecImprecise: Dist{Mean: 1.2, Sigma: 0.2, Min: 1, Max: 6},
			Error:         Dist{Mean: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewILPOA(s); err == nil {
		t.Error("strict constructor accepted an infeasible set")
	}
	for _, build := range []func(*TaskSet) (Policy, error){
		NewILPOABestEffort, NewILPPostOABestEffort, NewFlippedEDFBestEffort,
	} {
		p, err := build(s)
		if err != nil {
			t.Fatal(err)
		}
		// Actual execution times are short; best-effort runs usually meet
		// deadlines even though the WCET plan cannot.
		res, err := Simulate(s, p, SimConfig{Hyperperiods: 50, Sampler: NewRandomSampler(s, 1)})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if res.Jobs == 0 {
			t.Errorf("%s executed nothing", p.Name())
		}
	}
}

func TestPaperCaseAndGenerateWorkload(t *testing.T) {
	s, err := PaperCase("Rnd3")
	if err != nil || s.Len() != 5 {
		t.Fatalf("PaperCase(Rnd3): %v, n=%d", err, s.Len())
	}
	if _, err := PaperCase("nope"); err == nil {
		t.Error("unknown case accepted")
	}
	gen, err := GenerateWorkload(WorkloadSpec{
		Name: "custom", Tasks: 4, JobsPerHyperperiod: 20,
		UtilizationAccurate: 1.5, ImpreciseFeasible: true, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	if gen.Len() != 4 || gen.JobsPerHyperperiod() != 20 {
		t.Errorf("generated set: n=%d jobs=%d", gen.Len(), gen.JobsPerHyperperiod())
	}
	if u := gen.UtilizationAccurate(); u < 1.45 || u > 1.55 {
		t.Errorf("generated utilization %g", u)
	}
	if Schedulable(gen, Accurate) || !Schedulable(gen, Imprecise) {
		t.Error("generated set verdicts wrong")
	}
	// Determinism.
	gen2, err := GenerateWorkload(WorkloadSpec{
		Name: "custom", Tasks: 4, JobsPerHyperperiod: 20,
		UtilizationAccurate: 1.5, ImpreciseFeasible: true, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < gen.Len(); i++ {
		if gen.Task(i).WCETAccurate != gen2.Task(i).WCETAccurate {
			t.Fatal("generator not deterministic")
		}
	}
}

func TestSweepUtilization(t *testing.T) {
	s := apiSet(t)
	sets, err := SweepUtilization(s, []float64{0.8, 1.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 2 {
		t.Fatalf("%d sets", len(sets))
	}
	if u := sets[0].UtilizationAccurate(); u < 0.74 || u > 0.86 {
		t.Errorf("sweep[0] U = %g", u)
	}
}
