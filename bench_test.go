package nprt

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, plus the ablation benches DESIGN.md calls out. Each
// benchmark regenerates its artifact through internal/experiments and
// reports the headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. Benchmark hyper-period counts default to
// a fast setting; set -paperhp=10000 for the paper's full 10K hyper-periods.

import (
	"flag"
	"fmt"
	"runtime"
	"testing"

	"nprt/internal/cumulative"
	"nprt/internal/esr"
	"nprt/internal/experiments"
	"nprt/internal/ilp"
	"nprt/internal/offline"
	"nprt/internal/sim"
	"nprt/internal/workload"
)

var paperHP = flag.Int("paperhp", 200, "hyper-periods per simulation in paper benchmarks (10000 = paper scale)")

func benchCfg() experiments.Config {
	return experiments.Config{Hyperperiods: *paperHP, Seed: 1}
}

// BenchmarkTable1 regenerates Table I (characteristics + Theorem-1
// verdicts for all 14 cases).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 14 {
			b.Fatalf("%d rows", len(rows))
		}
	}
}

// BenchmarkTable2 regenerates Table II (the independent-error comparison)
// and reports the normalized mean errors as custom metrics.
func BenchmarkTable2(b *testing.B) {
	var last *experiments.Table2Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		b.ReportMetric(last.Normalized["EDF+ESR"], "norm-esr")
		b.ReportMetric(last.Normalized["ILP+OA"], "norm-ilp")
		b.ReportMetric(last.Normalized["ILP+Post+OA"], "norm-post")
		b.ReportMetric(last.Normalized["Flipped EDF"], "norm-flip")
		b.ReportMetric(last.AvgMissPct, "accurate-miss-%")
	}
}

// BenchmarkFig3 regenerates Figure 3 (mean error vs utilization sweep).
func BenchmarkFig3(b *testing.B) {
	var last *experiments.FigResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		pts := last.Series["Flipped EDF"]
		b.ReportMetric(pts[0].MeanError, "flip-err-lowU")
		b.ReportMetric(pts[len(pts)-1].MeanError, "flip-err-highU")
	}
}

// BenchmarkTable3 regenerates Table III (cumulative-error stress tests).
func BenchmarkTable3(b *testing.B) {
	var feasible int
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		feasible = 0
		for _, r := range rows {
			if r.DPFeasible {
				feasible++
			}
		}
	}
	b.ReportMetric(float64(feasible), "dp-feasible-cases")
}

// BenchmarkFig4 regenerates Figure 4 (DP(C) candidate counts with and
// without pruning).
func BenchmarkFig4(b *testing.B) {
	var last *experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		maxW, maxWo := 0, 0
		for _, v := range last.WithPruning {
			if v > maxW {
				maxW = v
			}
		}
		for _, v := range last.WithoutPruning {
			if v > maxWo {
				maxWo = v
			}
		}
		b.ReportMetric(float64(maxW), "max-frontier-pruned")
		b.ReportMetric(float64(maxWo), "max-frontier-unpruned")
	}
}

// BenchmarkTable4 regenerates Table IV (Newton–Raphson task profiles from
// real kernel characterization).
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		infos, err := experiments.Table4()
		if err != nil {
			b.Fatal(err)
		}
		if len(infos) != 3 {
			b.Fatal("wrong task count")
		}
	}
}

// BenchmarkFig5 regenerates Figure 5 (prototype: real Newton–Raphson
// execution under the scheduling methods across a utilization sweep).
func BenchmarkFig5(b *testing.B) {
	var last *experiments.FigResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		sum := func(m string) (s float64) {
			for _, p := range last.Series[m] {
				s += p.MeanError
			}
			return
		}
		b.ReportMetric(sum("EDF-Imprecise"), "imprecise-err-sum")
		b.ReportMetric(sum("ILP+Post+OA"), "ilppost-err-sum")
	}
}

// --- Ablations ---------------------------------------------------------------

func mustCaseSet(b *testing.B, name string) *TaskSet {
	b.Helper()
	c, err := workload.CaseByName(name)
	if err != nil {
		b.Fatal(err)
	}
	s, err := c.Set()
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkAblationSlackKinds compares EDF+ESR with each slack source
// disabled (individual / idle / inter-job) on the Rnd9 case.
func BenchmarkAblationSlackKinds(b *testing.B) {
	s := mustCaseSet(b, "Rnd9")
	variants := []struct {
		name string
		mk   func() *esr.Policy
	}{
		{"full", func() *esr.Policy { return esr.New() }},
		{"no-individual", func() *esr.Policy { return &esr.Policy{DisableIndividual: true, Label: "ESR-noind"} }},
		{"no-idle", func() *esr.Policy { return &esr.Policy{DisableIdle: true, Label: "ESR-noidle"} }},
		{"no-inter", func() *esr.Policy { return &esr.Policy{DisableInter: true, Label: "ESR-nointer"} }},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var err float64
			for i := 0; i < b.N; i++ {
				res, e := sim.Run(s, v.mk(), sim.Config{
					Hyperperiods: *paperHP,
					Sampler:      sim.NewRandomSampler(s, 1),
				})
				if e != nil {
					b.Fatal(e)
				}
				err = res.MeanError()
			}
			b.ReportMetric(err, "mean-error")
		})
	}
}

// BenchmarkAblationPostRules compares ILP+Post+OA with each §IV-B rewrite
// disabled on the Rnd11 case.
func BenchmarkAblationPostRules(b *testing.B) {
	s := mustCaseSet(b, "Rnd11")
	base, err := offline.BuildILPSchedule(s)
	if err != nil {
		b.Fatal(err)
	}
	variants := []struct {
		name string
		opt  offline.PostProcessOptions
	}{
		{"full", offline.PostProcessOptions{}},
		{"no-postpone", offline.PostProcessOptions{DisablePostpone: true}},
		{"no-samemode-swap", offline.PostProcessOptions{DisableSameModeSwap: true}},
		{"no-imprecise-later", offline.PostProcessOptions{DisableImpreciseLater: true}},
		{"none", offline.PostProcessOptions{DisablePostpone: true, DisableSameModeSwap: true, DisableImpreciseLater: true}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var errv float64
			for i := 0; i < b.N; i++ {
				post, _ := offline.PostProcess(base, v.opt)
				p := offline.NewOA("ablate", post)
				res, e := sim.Run(s, p, sim.Config{
					Hyperperiods: *paperHP,
					Sampler:      sim.NewRandomSampler(s, 1),
				})
				if e != nil {
					b.Fatal(e)
				}
				errv = res.MeanError()
			}
			b.ReportMetric(errv, "mean-error")
		})
	}
}

// BenchmarkThetaSweep measures EDF+ESR(C)'s error-violation rate across θ
// values on the Rnd8 case.
func BenchmarkThetaSweep(b *testing.B) {
	s := mustCaseSet(b, "Rnd8")
	for _, theta := range []float64{0.1, 0.25, 0.5, 1.0, 2.0} {
		b.Run(formatTheta(theta), func(b *testing.B) {
			var viol float64
			for i := 0; i < b.N; i++ {
				p := &cumulative.ESRPolicy{Theta: theta}
				if _, e := sim.Run(s, p, sim.Config{
					Hyperperiods: *paperHP,
					Sampler:      sim.NewRandomSampler(s, 1),
				}); e != nil {
					b.Fatal(e)
				}
				viol = p.ViolationPercent()
			}
			b.ReportMetric(viol, "violation-%")
		})
	}
}

func formatTheta(v float64) string {
	switch {
	case v < 0.2:
		return "theta-0.1"
	case v < 0.3:
		return "theta-0.25"
	case v < 0.7:
		return "theta-0.5"
	case v < 1.5:
		return "theta-1.0"
	default:
		return "theta-2.0"
	}
}

// BenchmarkEngineDispatch measures the raw simulator dispatch rate: the
// indexed-heap engine against the retained linear-scan reference, on the
// paper's largest case (Rnd13, 163 jobs per hyper-period) and on synthetic
// stress sets whose pending queue averages n/2 deep. Run with -benchmem to
// see the allocation win from the pooled run state.
func BenchmarkEngineDispatch(b *testing.B) {
	type bcase struct {
		name string
		set  *TaskSet
		hp   int
		jobs int // jobs simulated per op, reported as a custom metric
	}
	cases := []bcase{{name: "Rnd13", set: mustCaseSet(b, "Rnd13"), hp: 10, jobs: 10 * 163}}
	for _, n := range []int{50, 200, 500, 1000} {
		s, err := workload.SyntheticStress(n)
		if err != nil {
			b.Fatal(err)
		}
		cases = append(cases, bcase{name: fmt.Sprintf("stress%d", n), set: s, hp: 5, jobs: 5 * n})
	}
	engines := []struct {
		name string
		kind sim.EngineKind
	}{
		{"indexed", sim.EngineIndexed},
		{"linear", sim.EngineLinearScan},
	}
	for _, c := range cases {
		for _, e := range engines {
			b.Run(c.name+"/"+e.name, func(b *testing.B) {
				sampler := sim.NewRandomSampler(c.set, 1)
				p := NewEDFImprecise()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := sim.Run(c.set, p, sim.Config{
						Hyperperiods: c.hp,
						Sampler:      sampler,
						Engine:       e.kind,
					}); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(c.jobs), "jobs/op")
			})
		}
	}
}

// BenchmarkILPOffline measures the offline mode-ILP solver stack on the
// paper's four largest cases under a fixed branch-and-bound node budget.
// Three stacks:
//
//   - legacy: the pre-overhaul solver — bounds spelled as dense constraint
//     rows in both the base model and the branching, no primal heuristic,
//     serial;
//   - new: native variable bounds, pooled tableaus, root heuristic, serial;
//   - parallel: new with the LP-relaxation worker pool.
//
// The node budget makes every stack explore the same number of nodes
// (bit-identical search on these budget-limited cases), so ns/op compares
// pure per-node solver throughput.
func BenchmarkILPOffline(b *testing.B) {
	const nodeBudget = 200
	for _, name := range []string{"Rnd10", "Rnd11", "Rnd12", "Rnd13"} {
		s := mustCaseSet(b, name)
		order, err := offline.EDFOrder(s, Deepest)
		if err != nil {
			b.Fatal(err)
		}
		stacks := []struct {
			name  string
			build func() *ilp.Problem
			opt   ilp.Options
		}{
			{"legacy", func() *ilp.Problem { return offline.BuildModeILPRowBounds(s, order) },
				ilp.Options{MaxNodes: nodeBudget, DenseRowBounds: true, DisableHeuristic: true}},
			{"new", func() *ilp.Problem { return offline.BuildModeILP(s, order) },
				ilp.Options{MaxNodes: nodeBudget}},
			{"parallel", func() *ilp.Problem { return offline.BuildModeILP(s, order) },
				ilp.Options{MaxNodes: nodeBudget, Workers: runtime.NumCPU()}},
		}
		for _, st := range stacks {
			b.Run(name+"/"+st.name, func(b *testing.B) {
				p := st.build()
				b.ResetTimer()
				var nodes int
				for i := 0; i < b.N; i++ {
					sol, err := ilp.Solve(p, st.opt)
					if err != nil {
						b.Fatal(err)
					}
					nodes = sol.Nodes
				}
				b.ReportMetric(float64(nodes), "nodes")
			})
		}
	}
}

// BenchmarkOptimizeModes measures the exact offline optimizer on the
// largest case.
func BenchmarkOptimizeModes(b *testing.B) {
	s := mustCaseSet(b, "Rnd13")
	order, err := offline.EDFOrder(s, Imprecise)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := offline.OptimizeModes(s, order); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTheorem1 measures the pseudo-polynomial schedulability test on
// the largest case.
func BenchmarkTheorem1(b *testing.B) {
	s := mustCaseSet(b, "Rnd13")
	for i := 0; i < b.N; i++ {
		CheckSchedulability(s, Imprecise)
	}
}
