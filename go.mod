module nprt

go 1.22
