// Package nprt is a library for non-preemptive real-time scheduling with
// imprecise computing on a uniprocessor, reproducing "Using Imprecise
// Computing for Improved Non-Preemptive Real-Time Scheduling" (DAC 2018).
//
// Periodic tasks declare two worst-case execution times — accurate (w) and
// imprecise (x < w) — and an error statistic for imprecise runs. The
// library provides:
//
//   - the Jeffay/Stanat/Martel schedulability test (Theorem 1) and the
//     γ-scaling slack analysis;
//   - online scheduling with explicit slack reclamation (EDF+ESR, §III);
//   - collaborative offline/online methods: ILP+OA, ILP+Post+OA and
//     Flipped EDF (§IV), backed by a from-scratch simplex/branch-and-bound
//     stack and an exact Pareto dynamic program;
//   - cumulative-error scheduling: the EDF+ESR(C) heuristic and the
//     complete DP(C) search (§V);
//   - a deterministic discrete-event simulator, trace validation, workload
//     generators for the paper's testcases, and an experiment harness that
//     regenerates every table and figure of the evaluation;
//   - robustness machinery: seeded fault injection (WCET overruns, aborts,
//     dropped releases) with selectable overrun containment, and a
//     resilient offline planner that degrades ILP+Post+OA → Flipped EDF →
//     EDF+ESR with recorded provenance.
//
// Quick start:
//
//	set, err := nprt.NewTaskSet([]nprt.Task{
//	    {Name: "video", Period: 33_000, WCETAccurate: 18_000, WCETImprecise: 6_000,
//	     Error: nprt.Dist{Mean: 2.5, Sigma: 0.8}},
//	    {Name: "audio", Period: 66_000, WCETAccurate: 21_000, WCETImprecise: 7_000,
//	     Error: nprt.Dist{Mean: 1.0, Sigma: 0.2}},
//	})
//	// Guarantee: schedulable with every job imprecise → no deadline misses.
//	ok := nprt.Schedulable(set, nprt.Imprecise)
//	res, err := nprt.Simulate(set, nprt.NewEDFESR(), nprt.SimConfig{Hyperperiods: 1000})
//	fmt.Println(res.MeanError(), res.MissPercent())
package nprt

import (
	"io"

	"nprt/internal/cluster"
	"nprt/internal/cumulative"
	"nprt/internal/esr"
	"nprt/internal/feasibility"
	"nprt/internal/offline"
	"nprt/internal/policy"
	schedruntime "nprt/internal/runtime"
	"nprt/internal/sim"
	"nprt/internal/task"
	"nprt/internal/trace"
	"nprt/internal/workload"
)

// Core model types, re-exported from the internal task model.
type (
	// Task is one periodic task with accurate/imprecise WCETs.
	Task = task.Task
	// TaskSet is a validated, period-sorted collection of tasks.
	TaskSet = task.Set
	// Job is one occurrence of a periodic task.
	Job = task.Job
	// Time is virtual time in microseconds.
	Time = task.Time
	// Mode is an execution accuracy level.
	Mode = task.Mode
	// Dist parameterizes a truncated-Gaussian quantity.
	Dist = task.Dist
	// Level is one additional imprecision level beyond Imprecise (the
	// multi-level generalization of §II-C); see Task.ExtraLevels.
	Level = task.Level
)

// Execution modes.
const (
	// Accurate runs the full computation (WCET w, zero error).
	Accurate = task.Accurate
	// Imprecise runs the reduced computation (WCET x < w, nonzero error).
	Imprecise = task.Imprecise
	// Deepest addresses each task's most imprecise declared level.
	Deepest = task.Deepest
)

// NewTaskSet validates the tasks and returns a period-sorted set.
func NewTaskSet(tasks []Task) (*TaskSet, error) { return task.New(tasks) }

// LoadTaskSetJSON reads a JSON array of Task values. Unknown fields are
// rejected.
func LoadTaskSetJSON(r io.Reader) (*TaskSet, error) { return task.DecodeJSON(r) }

// FeasibilityReport is the detailed result of the Theorem-1 analysis,
// including the γ scaling factors the ESR slack reclamation uses.
type FeasibilityReport = feasibility.Report

// CheckSchedulability runs the Theorem-1 analysis in the given mode.
func CheckSchedulability(s *TaskSet, m Mode) FeasibilityReport {
	return feasibility.Check(s, m)
}

// Schedulable reports the Theorem-1 verdict in the given mode.
func Schedulable(s *TaskSet, m Mode) bool { return feasibility.Schedulable(s, m) }

// Policy is a non-preemptive scheduling policy driven by the simulator.
type Policy = sim.Policy

// Simulation types, re-exported from the engine.
type (
	// SimConfig parameterizes a simulation run.
	SimConfig = sim.Config
	// SimResult aggregates a run's metrics.
	SimResult = sim.Result
	// Sampler supplies actual execution times and errors.
	Sampler = sim.Sampler
	// Trace is an executed schedule.
	Trace = trace.Trace
)

// Simulate runs the policy over the set on the virtual-time engine.
func Simulate(s *TaskSet, p Policy, cfg SimConfig) (*SimResult, error) {
	return sim.Run(s, p, cfg)
}

// NewRandomSampler draws truncated-Gaussian execution times and errors from
// deterministic per-task streams.
func NewRandomSampler(s *TaskSet, seed uint64) Sampler { return sim.NewRandomSampler(s, seed) }

// JitterSampler supplies sporadic release jitter; see SimConfig.Jitter.
type JitterSampler = sim.JitterSampler

// NewRandomJitter draws per-task sporadic release jitter from the given
// truncated-Gaussian distributions (a zero Dist keeps that task strictly
// periodic). Theorem 1 stays sufficient for sporadic tasks, so the online
// schedulers keep their guarantees; offline methods require periodic
// releases and are rejected by the engine under jitter.
func NewRandomJitter(s *TaskSet, dists []Dist, seed uint64) JitterSampler {
	return sim.NewRandomJitter(s, dists, seed)
}

// Fault injection and overrun containment (docs/ALGORITHMS.md §8).

type (
	// FaultRates parameterizes seeded fault injection: WCET-overrun,
	// mid-execution-abort and dropped-release probabilities with their
	// magnitudes; see SimConfig.Faults.
	FaultRates = sim.FaultRates
	// FaultSampler decides per-job fault verdicts; FaultPlan is the
	// deterministic seeded implementation.
	FaultSampler = sim.FaultSampler
	// Containment selects what the engine does when a job overruns its
	// declared WCET; see SimConfig.Containment.
	Containment = sim.Containment
	// FaultStats is a run's fault accounting (SimResult.Faults): injected
	// events, watchdog kills, downgrades, and the faulted/cascaded miss
	// split.
	FaultStats = sim.FaultStats
)

// Overrun containment policies.
const (
	// RunToCompletion lets an overrunning job keep the processor (baseline).
	RunToCompletion = sim.RunToCompletion
	// AbortAtBudget kills the job at its declared WCET; the fallback error
	// is charged and the miss stays local to the faulted job.
	AbortAtBudget = sim.AbortAtBudget
	// DowngradeOnOverrun forces the task's subsequent jobs to its deepest
	// imprecise level until one completes fault-free.
	DowngradeOnOverrun = sim.DowngradeOnOverrun
)

// NewFaultPlan builds the deterministic fault sampler: the verdict for job
// (task, index) is a pure function of (seed, task, index), so different
// policies or containments run against identical fault scenarios. A
// zero-rate plan is bit-identical to no injection at all.
func NewFaultPlan(seed uint64, rates FaultRates) FaultSampler {
	return sim.NewFaultPlan(seed, rates)
}

// Resilient offline planning.

// PlanProvenance records which rung of the degradation chain produced a
// plan, the ILP attempts and budget spent, and every rung failure.
type PlanProvenance = offline.PlanProvenance

// ResilientOptions configures ResilientPlan's ILP budget and retry/backoff
// behaviour.
type ResilientOptions = offline.ResilientOptions

// ResilientPlan produces a scheduling policy through a degradation chain:
// ILP+Post+OA under a time budget (with retry and budget backoff), then
// Flipped EDF, then the online EDF+ESR. It returns the first rung that
// holds together with its provenance; an error means even the online rung
// was not constructible.
func ResilientPlan(s *TaskSet, opt ResilientOptions) (Policy, *PlanProvenance, error) {
	return offline.ResilientPlan(s, opt)
}

// ValidateTrace checks the non-preemptive schedule invariants of a result's
// trace; deadlines are enforced when requireDeadlines is set. It returns
// human-readable violation descriptions (empty = valid).
func ValidateTrace(s *TaskSet, tr *Trace, requireDeadlines bool) []string {
	vs := trace.Validate(tr, trace.Options{
		RequireDeadlines: requireDeadlines, WCETBounds: true, Set: s,
	})
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.String()
	}
	return out
}

// Baseline policies.

// NewEDFAccurate returns non-preemptive EDF with every job accurate.
func NewEDFAccurate() Policy { return policy.NewEDFAccurate() }

// NewEDFImprecise returns non-preemptive EDF with every job imprecise.
func NewEDFImprecise() Policy { return policy.NewEDFImprecise() }

// NewEDFESR returns the §III online method: EDF with explicit slack
// reclamation for independent errors. If the set passes Theorem 1 with
// imprecise WCETs, it never misses a deadline.
func NewEDFESR() Policy { return esr.New() }

// Offline schedule plumbing.

// OfflineSchedule is an offline hyper-period plan (order, modes, s, f̂).
type OfflineSchedule = offline.Schedule

// NewILPOA returns the §IV-A collaborative method: offline optimal mode
// assignment (order-fixed ILP, solved exactly) plus constant-time online
// upgrades. Fails with an error when the set is infeasible even with all
// jobs imprecise; see NewILPOABestEffort.
func NewILPOA(s *TaskSet) (Policy, error) { return offline.NewILPOA(s) }

// NewILPPostOA returns the §IV-B method: ILP plus the three offline
// post-processing rewrites, plus online adjustment.
func NewILPPostOA(s *TaskSet) (Policy, error) { return offline.NewILPPostOA(s) }

// NewFlippedEDF returns the §IV-C method: as-late-as-possible reverse-time
// EDF with all jobs imprecise, plus online adjustment.
func NewFlippedEDF(s *TaskSet) (Policy, error) { return offline.NewFlippedEDF(s) }

// Best-effort variants fall back to an all-imprecise ASAP plan when the
// set fails imprecise-mode feasibility (no deadline guarantee remains).

// NewILPOABestEffort is NewILPOA with the infeasible-set fallback.
func NewILPOABestEffort(s *TaskSet) (Policy, error) { return offline.NewILPOABestEffort(s) }

// NewILPPostOABestEffort is NewILPPostOA with the infeasible-set fallback.
func NewILPPostOABestEffort(s *TaskSet) (Policy, error) { return offline.NewILPPostOABestEffort(s) }

// NewFlippedEDFBestEffort is NewFlippedEDF with the infeasible-set fallback.
func NewFlippedEDFBestEffort(s *TaskSet) (Policy, error) { return offline.NewFlippedEDFBestEffort(s) }

// Cumulative-error scheduling (§V). Set Task.MaxConsecutiveImprecise (B_i)
// to bound each task's consecutive imprecise runs.

// CumulativeESR is the §V-A online heuristic's concrete type, exposing the
// scenario statistics and the θ knob.
type CumulativeESR = cumulative.ESRPolicy

// NewCumulativeESR returns EDF+ESR(C) with the default θ.
func NewCumulativeESR() *CumulativeESR { return cumulative.NewESR() }

// CumulativeAssignment is a feasible offline precision plan over one super
// period.
type CumulativeAssignment = cumulative.Assignment

// CumulativeSearchStats reports the DP(C) search behaviour.
type CumulativeSearchStats = cumulative.SearchStats

// CumulativeDPOptions configures the DP(C) search.
type CumulativeDPOptions = cumulative.Options

// SolveCumulativeDP runs the complete §V-B dynamic program. A nil
// assignment with Feasible=false means no precision assignment satisfies
// both the deadline and error constraints (Proposition 1), provided the
// search was not truncated.
func SolveCumulativeDP(s *TaskSet, opt CumulativeDPOptions) (*CumulativeAssignment, *CumulativeSearchStats, error) {
	return cumulative.Solve(s, opt)
}

// NewCumulativeReplay executes a DP(C) assignment cyclically.
func NewCumulativeReplay(plan *CumulativeAssignment) Policy { return cumulative.NewReplay(plan) }

// PaperCase returns one of the paper's built-in testcases by name
// (Rnd1..Rnd13, IDCT); see also GenerateWorkload for custom sets.
func PaperCase(name string) (*TaskSet, error) {
	c, err := workload.CaseByName(name)
	if err != nil {
		return nil, err
	}
	return c.Set()
}

// WorkloadSpec parameterizes a synthetic random task set in the paper's
// style (see internal/workload).
type WorkloadSpec = workload.RandomSpec

// GenerateWorkload builds a deterministic synthetic task set matching the
// spec: task count, jobs per hyper-period, accurate-mode utilization and
// the imprecise-mode Theorem-1 verdict.
func GenerateWorkload(spec WorkloadSpec) (*TaskSet, error) {
	return workload.Generate(spec)
}

// SweepUtilization returns copies of the set scaled to each accurate-mode
// utilization target, preserving the imprecise/accurate structure (the
// x-axis of the paper's Figures 3 and 5).
func SweepUtilization(s *TaskSet, targets []float64) ([]*TaskSet, error) {
	return workload.UtilizationSweep(s, targets)
}

// Long-running runtime (admission control, overload governor,
// checkpoint/restore). The runtime wraps the simulator and the Theorem-1
// analysis into a service whose task set churns while the scheduler is
// live: every Add is screened in both accuracy profiles before it can
// void a guarantee, sustained overload sheds accuracy (never timing)
// under a hysteretic governor, and versioned snapshots make kill-and-
// restore resume bit-identically — the running digest is the proof.

// SchedulerRuntime is the long-running admission-controlled runtime.
type SchedulerRuntime = schedruntime.Runtime

// RuntimeOptions configures NewRuntime.
type RuntimeOptions = schedruntime.Options

// RuntimeTaskSpec is one admitted task plus its shed criticality.
type RuntimeTaskSpec = schedruntime.TaskSpec

// RuntimeGovernorConfig tunes the overload governor's hysteresis.
type RuntimeGovernorConfig = schedruntime.GovernorConfig

// AdmissionDecision is the structured outcome of one runtime request.
type AdmissionDecision = schedruntime.Decision

// AdmissionVerdict classifies an admission decision.
type AdmissionVerdict = schedruntime.Verdict

// Admission verdicts.
const (
	// AdmissionRejected: admitting would void the deadline guarantee.
	AdmissionRejected = schedruntime.Rejected
	// AdmissionAdmitted: both accuracy profiles pass Theorem 1.
	AdmissionAdmitted = schedruntime.Admitted
	// AdmissionAdmittedDegraded: only the deepest-imprecise profile
	// passes — deadlines are guaranteed, full accuracy is not.
	AdmissionAdmittedDegraded = schedruntime.AdmittedDegraded
)

// RuntimeMetrics are the runtime's monotonic lifetime counters.
type RuntimeMetrics = schedruntime.Metrics

// RuntimeEvent is one scripted admission-control request.
type RuntimeEvent = schedruntime.Event

// RuntimeTape is a replayable script of admission-control requests.
type RuntimeTape = schedruntime.Tape

// RuntimeCheckpoint is a versioned snapshot of the full runtime state.
type RuntimeCheckpoint = schedruntime.Checkpoint

// NewRuntime starts an empty long-running runtime.
func NewRuntime(opt RuntimeOptions) (*SchedulerRuntime, error) { return schedruntime.New(opt) }

// RestoreRuntime resumes a runtime from a checkpoint written by
// (*SchedulerRuntime).Checkpoint and EncodeRuntimeCheckpoint; the restored
// instance continues bit-identically to one that was never stopped.
func RestoreRuntime(r io.Reader) (*SchedulerRuntime, error) { return schedruntime.Restore(r) }

// EncodeRuntimeCheckpoint writes a snapshot as versioned JSON.
func EncodeRuntimeCheckpoint(w io.Writer, cp *RuntimeCheckpoint) error {
	return schedruntime.EncodeCheckpoint(w, cp)
}

// Crash-only durable runtime. DurableRuntime wraps a SchedulerRuntime in
// a write-ahead journal plus generational checkpoints: every mutation is
// journaled (CRC32C-framed, fsynced) before it is applied, and OpenDurable
// recovers from the newest good checkpoint plus a digest-cross-checked
// replay — killing the process at any instruction loses nothing that was
// acknowledged. cmd/impserve's -sweep mode proves this mechanically by
// killing a run at every fsync boundary.

// DurableRuntime is the journal-backed runtime store.
type DurableRuntime = schedruntime.Store

// DurableOptions configures OpenDurable.
type DurableOptions = schedruntime.StoreOptions

// DurableRecovery reports what OpenDurable found and rebuilt.
type DurableRecovery = schedruntime.RecoveryInfo

// OpenDurable recovers (or initializes) the durable runtime in dir.
func OpenDurable(dir string, opt DurableOptions) (*DurableRuntime, error) {
	return schedruntime.OpenStore(dir, opt)
}

// DecodeRuntimeTapeStrict decodes a tape and rejects, with line numbers,
// any event that relies on runtime state to be ignored: duplicate adds,
// removes of unknown names, non-monotonic epochs. Use it for hand-written
// operational tapes; generated churn tapes carry stale events by design
// and need the lenient decoder.
func DecodeRuntimeTapeStrict(r io.Reader) (*RuntimeTape, error) {
	return schedruntime.DecodeTapeStrict(r)
}

// Sharded cluster: N durable runtimes behind a partition-aware router.
// Each shard is a complete DurableRuntime — its own WAL, checkpoints and
// Theorem-1 admission — and a task lives on exactly one shard, so every
// uniprocessor guarantee holds per shard while admission capacity scales
// with the shard count (scripts/bench_cluster.sh records the headline in
// BENCH_CLUSTER.json). Placement policies (round-robin, least-util,
// affinity, first-fit, best-fit) consult incremental per-shard Jeffay
// mirrors; see docs/ALGORITHMS.md §12.

// SchedulerCluster is the partition-aware router over N shard stores.
type SchedulerCluster = cluster.Cluster

// ClusterOptions configures OpenCluster.
type ClusterOptions = cluster.Options

// ClusterRecovery reports what OpenCluster found and rebuilt.
type ClusterRecovery = cluster.Recovery

// OpenCluster recovers (or initializes) a sharded cluster in dir.
func OpenCluster(dir string, opt ClusterOptions) (*SchedulerCluster, error) {
	return cluster.Open(dir, opt)
}

// ClusterPlacementPolicies lists the built-in placement policy names.
func ClusterPlacementPolicies() []string { return cluster.PolicyNames() }
